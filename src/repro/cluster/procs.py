"""Worker process management: every worker is a real ``engine serve``.

Workers are spawned as plain subprocesses running the CLI the README
documents — ``python -m repro engine serve --socket ... --shards
<total>`` — rather than :mod:`multiprocessing` children.  That buys
three things: the cluster exercises the exact process an operator would
run by hand, workers survive being spawned from daemonic pool workers
(``subprocess`` has no such restriction, so ``cluster-*`` scenarios can
ride the replay runner), and worker death is an observable fact
(``poll``) instead of a shared-state mystery.

The parent's ``repro`` package directory is prepended to the child's
``PYTHONPATH``, so workers import the same code under test regardless of
how the parent was launched.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
from pathlib import Path

from ..errors import ModelError
from .spec import ClusterSpec, format_endpoint, parse_endpoint


def free_tcp_port(host: str = "127.0.0.1") -> int:
    """A currently-free loopback TCP port, allocated by the kernel.

    The port is chosen up front (bind ephemeral, read it back, close)
    rather than parsed out of the worker's banner, so the endpoint is
    known *before* the process exists — which is what lets a respawned
    worker come back on the same endpoint its clients already hold.
    ``SO_REUSEADDR`` on the worker side makes the rebind race-free in
    practice for a port this process just released.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind((host, 0))
        return probe.getsockname()[1]


def worker_command(
    spec: ClusterSpec,
    endpoint: str,
    wal_dir: str | None = None,
    trace_path: str | None = None,
) -> list[str]:
    """The exact ``engine serve`` argv one worker runs.

    The single builder every spawn and respawn goes through — the spec's
    serving shape, the durability flags, and the instrumentation stance
    are encoded here once, so a respawned worker is guaranteed to come
    back with the exact configuration it died with.

    The instrumentation stance follows the spec: by default workers stay
    uninstrumented — the fleet's observability lives at the router plus
    the worker stats folded in at scrape time, so per-request sampling
    inside workers would cost hot-path time for metrics nothing scrapes
    — but ``spec.worker_metrics`` turns on each worker's live registry
    so the router can fold the workers' own scrapes into the fleet
    exposition.
    """
    kind, address = parse_endpoint(str(endpoint))
    if kind == "unix":
        listen = ["--socket", address[0]]
    else:
        listen = ["--host", address[0], "--port", str(address[1])]
    argv = [
        sys.executable, "-m", "repro", "engine", "serve",
        *listen,
        "--resources", str(spec.num_resources),
        "--shards", str(spec.total_shards),
        "--num-types", str(spec.num_types),
        "--cost-growth", repr(spec.cost_growth),
        "--record" if spec.record else "--no-record",
        "--window", str(spec.session_window),
        "--metrics" if spec.worker_metrics else "--no-metrics",
    ]
    if trace_path is not None:
        argv += ["--trace-jsonl", str(trace_path)]
    if wal_dir is not None:
        argv += ["--wal-dir", str(wal_dir), "--fsync", spec.fsync]
        if spec.snapshot_every is not None:
            argv += ["--snapshot-every", str(spec.snapshot_every)]
    return argv


def _worker_env() -> dict:
    src_root = str(Path(__file__).resolve().parents[2])
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    return env


class WorkerProcess:
    """One lease-server worker subprocess and its endpoint.

    ``endpoint`` is the string the router dials and the ``route``
    handshake hands to direct clients — ``unix:<path>`` or
    ``tcp:<host>:<port>`` (a bare path is accepted and normalised to
    the unix form).  The endpoint is *stable across respawns*: a
    successor rebinds the same socket file or port, so staleness is
    carried by the routing epoch, never by a moved address.
    """

    def __init__(
        self,
        index: int,
        spec: ClusterSpec,
        endpoint: str,
        quiet: bool = True,
    ):
        self.index = index
        self.spec = spec
        kind, address = parse_endpoint(str(endpoint))
        self.endpoint = format_endpoint(kind, *address)
        self.transport = kind
        # The raw socket file for unix workers (None on tcp) — what
        # respawn unlinks and pre-endpoint callers keep reading.
        self.socket_path = address[0] if kind == "unix" else None
        self.quiet = quiet
        self.wal_dir = spec.worker_wal_dir(index)
        self.trace_path = spec.worker_trace_path(index)
        self.respawns = 0
        self.process = self._spawn()

    def _spawn(self) -> subprocess.Popen:
        sink = subprocess.DEVNULL if self.quiet else None
        return subprocess.Popen(
            worker_command(
                self.spec, self.endpoint, wal_dir=self.wal_dir,
                trace_path=self.trace_path,
            ),
            env=_worker_env(),
            stdout=sink,
            stderr=sink,
        )

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def respawn(self) -> str:
        """Replace the worker process in place; returns the endpoint.

        Kills whatever is left of the old process (a hung worker must
        release the socket before its successor binds it), unlinks the
        stale socket file (unix), and starts a fresh process through
        the same :func:`worker_command` argv — including the WAL
        directory, so the successor recovers the predecessor's durable
        state before accepting traffic.  Mutating ``self.process`` in
        place keeps :func:`reap` pointed at the live incarnation.
        """
        if self.alive:
            self.process.kill()
        try:
            self.process.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            pass
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except FileNotFoundError:
                pass
        self.respawns += 1
        self.process = self._spawn()
        return self.endpoint

    def stop(self, timeout: float = 10.0) -> int | None:
        """Reap the worker: wait briefly, then terminate, then kill."""
        try:
            return self.process.wait(timeout=0.5)
        except subprocess.TimeoutExpired:
            pass
        self.process.terminate()
        try:
            return self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            return self.process.wait(timeout=timeout)


def spawn_workers(
    spec: ClusterSpec, workdir: str | Path, quiet: bool = True
) -> list[WorkerProcess]:
    """Start one worker per shard group, endpoints per the spec.

    ``transport="unix"`` puts socket files under ``workdir``;
    ``transport="tcp"`` pre-allocates one loopback port per worker.
    Caller owns the lifecycle: either shut the workers down over the
    wire (the router's ``shutdown`` barrier) and then :func:`reap`, or
    :func:`reap` directly to terminate them.
    """
    workdir = Path(workdir)
    if not workdir.is_dir():
        raise ModelError(f"workdir {workdir} is not a directory")
    if spec.transport == "tcp":
        endpoints = [
            format_endpoint("tcp", "127.0.0.1", free_tcp_port())
            for _ in range(spec.num_workers)
        ]
    else:
        endpoints = [
            format_endpoint("unix", str(workdir / f"worker-{index}.sock"))
            for index in range(spec.num_workers)
        ]
    return [
        WorkerProcess(index, spec, endpoints[index], quiet=quiet)
        for index in range(spec.num_workers)
    ]


def make_respawner(workers: list[WorkerProcess]):
    """A ``respawn(index) -> endpoint`` callback over a worker fleet.

    What the router's supervision calls (off the event loop, in an
    executor) when it finds a worker dead: restart that worker in place
    and hand back the endpoint to redial.
    """

    def respawn(index: int) -> str:
        return workers[index].respawn()

    return respawn


def reap(workers: list[WorkerProcess], timeout: float = 10.0) -> None:
    """Stop every worker, tolerating ones that already exited."""
    for worker in workers:
        try:
            worker.stop(timeout=timeout)
        except Exception:
            pass
