"""Worker process management: every worker is a real ``engine serve``.

Workers are spawned as plain subprocesses running the CLI the README
documents — ``python -m repro engine serve --socket ... --shards
<total>`` — rather than :mod:`multiprocessing` children.  That buys
three things: the cluster exercises the exact process an operator would
run by hand, workers survive being spawned from daemonic pool workers
(``subprocess`` has no such restriction, so ``cluster-*`` scenarios can
ride the replay runner), and worker death is an observable fact
(``poll``) instead of a shared-state mystery.

The parent's ``repro`` package directory is prepended to the child's
``PYTHONPATH``, so workers import the same code under test regardless of
how the parent was launched.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from ..errors import ModelError
from .spec import ClusterSpec


def worker_command(
    spec: ClusterSpec,
    socket_path: str,
    wal_dir: str | None = None,
    trace_path: str | None = None,
) -> list[str]:
    """The exact ``engine serve`` argv one worker runs.

    The single builder every spawn and respawn goes through — the spec's
    serving shape, the durability flags, and the instrumentation stance
    are encoded here once, so a respawned worker is guaranteed to come
    back with the exact configuration it died with.

    The instrumentation stance follows the spec: by default workers stay
    uninstrumented — the fleet's observability lives at the router plus
    the worker stats folded in at scrape time, so per-request sampling
    inside workers would cost hot-path time for metrics nothing scrapes
    — but ``spec.worker_metrics`` turns on each worker's live registry
    so the router can fold the workers' own scrapes into the fleet
    exposition.
    """
    argv = [
        sys.executable, "-m", "repro", "engine", "serve",
        "--socket", str(socket_path),
        "--resources", str(spec.num_resources),
        "--shards", str(spec.total_shards),
        "--num-types", str(spec.num_types),
        "--cost-growth", repr(spec.cost_growth),
        "--record" if spec.record else "--no-record",
        "--window", str(spec.session_window),
        "--metrics" if spec.worker_metrics else "--no-metrics",
    ]
    if trace_path is not None:
        argv += ["--trace-jsonl", str(trace_path)]
    if wal_dir is not None:
        argv += ["--wal-dir", str(wal_dir), "--fsync", spec.fsync]
        if spec.snapshot_every is not None:
            argv += ["--snapshot-every", str(spec.snapshot_every)]
    return argv


def _worker_env() -> dict:
    src_root = str(Path(__file__).resolve().parents[2])
    env = os.environ.copy()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    return env


class WorkerProcess:
    """One lease-server worker subprocess and its socket path."""

    def __init__(
        self,
        index: int,
        spec: ClusterSpec,
        socket_path: str,
        quiet: bool = True,
    ):
        self.index = index
        self.spec = spec
        self.socket_path = str(socket_path)
        self.quiet = quiet
        self.wal_dir = spec.worker_wal_dir(index)
        self.trace_path = spec.worker_trace_path(index)
        self.respawns = 0
        self.process = self._spawn()

    def _spawn(self) -> subprocess.Popen:
        sink = subprocess.DEVNULL if self.quiet else None
        return subprocess.Popen(
            worker_command(
                self.spec, self.socket_path, wal_dir=self.wal_dir,
                trace_path=self.trace_path,
            ),
            env=_worker_env(),
            stdout=sink,
            stderr=sink,
        )

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def respawn(self) -> str:
        """Replace the worker process in place; returns the socket path.

        Kills whatever is left of the old process (a hung worker must
        release the socket before its successor binds it), unlinks the
        stale socket file, and starts a fresh process through the same
        :func:`worker_command` argv — including the WAL directory, so
        the successor recovers the predecessor's durable state before
        accepting traffic.  Mutating ``self.process`` in place keeps
        :func:`reap` pointed at the live incarnation.
        """
        if self.alive:
            self.process.kill()
        try:
            self.process.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            pass
        try:
            os.unlink(self.socket_path)
        except FileNotFoundError:
            pass
        self.respawns += 1
        self.process = self._spawn()
        return self.socket_path

    def stop(self, timeout: float = 10.0) -> int | None:
        """Reap the worker: wait briefly, then terminate, then kill."""
        try:
            return self.process.wait(timeout=0.5)
        except subprocess.TimeoutExpired:
            pass
        self.process.terminate()
        try:
            return self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            return self.process.wait(timeout=timeout)


def spawn_workers(
    spec: ClusterSpec, workdir: str | Path, quiet: bool = True
) -> list[WorkerProcess]:
    """Start one worker per shard group, sockets under ``workdir``.

    Caller owns the lifecycle: either shut the workers down over the
    wire (the router's ``shutdown`` barrier) and then :func:`reap`, or
    :func:`reap` directly to terminate them.
    """
    workdir = Path(workdir)
    if not workdir.is_dir():
        raise ModelError(f"workdir {workdir} is not a directory")
    return [
        WorkerProcess(
            index, spec, str(workdir / f"worker-{index}.sock"), quiet=quiet
        )
        for index in range(spec.num_workers)
    ]


def make_respawner(workers: list[WorkerProcess]):
    """A ``respawn(index) -> socket_path`` callback over a worker fleet.

    What the router's supervision calls (off the event loop, in an
    executor) when it finds a worker dead: restart that worker in place
    and hand back the socket to redial.
    """

    def respawn(index: int) -> str:
        return workers[index].respawn()

    return respawn


def reap(workers: list[WorkerProcess], timeout: float = 10.0) -> None:
    """Stop every worker, tolerating ones that already exited."""
    for worker in workers:
        try:
            worker.stop(timeout=timeout)
        except Exception:
            pass
