"""Extensions realising the thesis' future-work outlooks.

* :mod:`repro.extensions.capacitated` — capacitated facility leasing
  (Section 4.5 outlook): per-step facility capacities, a capacity-aware
  greedy online algorithm, and an exact MILP baseline.
* :mod:`repro.extensions.forecast` — prediction-augmented parking permit
  (Sections 3.5/5.6 outlook on stochastic demands): noisy clairvoyant
  oracles, a follow-the-prediction policy, and a hedged variant with a
  worst-case spending cap.  Benchmark E15 (the ``forecast-*`` scenario
  family in ``repro.engine.paper``) sweeps the oracle error rate and
  measures both policies against the exact interval-model DP, with the
  replay seed seeding the oracle's noise.
"""

from .capacitated import (
    CapacitatedInstance,
    OnlineCapacitatedFacilityLeasing,
    optimal_ilp,
)
from .forecast import (
    ForecastParkingPermit,
    HedgedForecastParkingPermit,
    NoisyOracle,
)

__all__ = [
    "CapacitatedInstance",
    "ForecastParkingPermit",
    "HedgedForecastParkingPermit",
    "NoisyOracle",
    "OnlineCapacitatedFacilityLeasing",
    "optimal_ilp",
]
