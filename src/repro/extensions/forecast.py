"""Prediction-augmented leasing — the stochastic-demands outlook.

Sections 3.5 and 5.6 both close with the same question: what if demands
are not adversarial but "given according to some probability
distribution" learnable from the past?  This module explores the modern
framing — algorithms with (possibly erroneous) predictions — on the
parking permit problem:

* :class:`NoisyOracle` — sees the true future rainy days but flips each
  day's forecast with an error probability, modelling a trained
  predictor of tunable quality;
* :class:`ForecastParkingPermit` — on each uncovered rainy day, buys the
  lease type with the best *predicted* cost per served day;
* :class:`HedgedForecastParkingPermit` — the same, but hedged: inside any
  long-lease window it never spends more than ``hedge`` times what the
  worst-case primal-dual algorithm would, restoring an O(hedge * K)
  worst-case guarantee while keeping most of the prediction benefit
  (consistency/robustness in the learning-augmented sense).

The E15 benchmark sweeps the oracle's error rate: with perfect
predictions the forecast policies approach OPT, and as errors grow the
hedged variant degrades gracefully while the pure one does not.
"""

from __future__ import annotations

import random

from .._validation import require
from ..core.lease import Lease, LeaseSchedule
from ..core.store import LeaseStore
from ..parking.model import ParkingPermitInstance


class NoisyOracle:
    """A forecaster that knows the truth but errs per day.

    Args:
        instance: supplies the true rainy days.
        error_rate: probability that any single day's forecast is flipped
            (rainy <-> dry).  0 is clairvoyance; 0.5 is noise.
        rng: seeded randomness; forecasts are drawn once per day and
            memoised, so repeated queries are consistent.
    """

    def __init__(
        self,
        instance: ParkingPermitInstance,
        error_rate: float,
        rng: random.Random,
    ):
        require(0.0 <= error_rate <= 1.0, "error_rate must be in [0, 1]")
        self._truth = set(instance.rainy_days)
        self.error_rate = error_rate
        self._rng = rng
        self._memo: dict[int, bool] = {}

    def predicts_rain(self, day: int) -> bool:
        """The (possibly wrong) forecast for ``day``."""
        if day not in self._memo:
            truth = day in self._truth
            flip = self._rng.random() < self.error_rate
            self._memo[day] = truth != flip
        return self._memo[day]

    def predicted_rainy_days(self, start: int, length: int) -> int:
        """Forecast rainy-day count in the window ``[start, start+length)``."""
        return sum(
            1 for day in range(start, start + length)
            if self.predicts_rain(day)
        )


class ForecastParkingPermit:
    """Follow-the-prediction: best predicted cost per served day.

    On an uncovered rainy day, each candidate window is scored by
    ``cost / predicted rainy days inside it`` and the best is bought.
    Clairvoyant predictions make this near-optimal; bad predictions can
    make it arbitrarily worse than the primal-dual algorithm — the
    hedged variant below repairs that.
    """

    def __init__(self, schedule: LeaseSchedule, oracle: NoisyOracle):
        self.schedule = schedule
        self.oracle = oracle
        self.store = LeaseStore()

    def _score(self, window: Lease) -> float:
        predicted = self.oracle.predicted_rainy_days(
            window.start, window.length
        )
        # The current day is rainy no matter what the forecast says.
        predicted = max(1, predicted)
        return window.cost / predicted

    def on_demand(self, day: int) -> None:
        if self.store.covers(0, day):
            return
        windows = self.schedule.windows_covering(day)
        self.store.buy(min(windows, key=self._score))

    def covers(self, day: int) -> bool:
        return self.store.covers(0, day)

    @property
    def cost(self) -> float:
        return self.store.total_cost

    @property
    def leases(self) -> tuple[Lease, ...]:
        return self.store.leases


class HedgedForecastParkingPermit(ForecastParkingPermit):
    """Prediction-following with a worst-case spending cap.

    Tracks, per longest-lease window, how much has been spent on
    prediction-driven purchases; once that exceeds ``hedge`` times the
    longest lease's cost, the policy stops trusting the oracle inside the
    window and falls back to the shortest lease (whose total further
    damage is bounded).  With ``hedge = 1`` the policy never pays more
    than twice the buy-everything-long baseline per window, recovering an
    O(K)-style guarantee while keeping clairvoyant performance when the
    oracle is good.
    """

    def __init__(
        self,
        schedule: LeaseSchedule,
        oracle: NoisyOracle,
        hedge: float = 1.0,
    ):
        super().__init__(schedule, oracle)
        require(hedge > 0, "hedge must be positive")
        self.hedge = hedge
        self._spent_in_window: dict[int, float] = {}

    def on_demand(self, day: int) -> None:
        if self.store.covers(0, day):
            return
        longest = self.schedule[self.schedule.num_types - 1]
        window_start = longest.aligned_start(day)
        spent = self._spent_in_window.get(window_start, 0.0)
        windows = self.schedule.windows_covering(day)
        budget = self.hedge * longest.cost
        if spent >= budget:
            # Oracle trust exhausted: buy the long lease once and be done
            # with this window (the ski-rental endgame).
            choice = windows[-1]
        else:
            choice = min(windows, key=self._score)
        if self.store.buy(choice):
            self._spent_in_window[window_start] = spent + choice.cost
