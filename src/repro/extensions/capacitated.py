"""Capacitated facility leasing — the Section 4.5 outlook, realised.

The thesis proposes studying "the leasing variant of capacitated
FacilityLocation in which facilities can serve a limited number of
clients per time step" and notes its tight connection to scheduling
(machines = facilities, jobs = clients).  This module provides:

* the model: facility leasing plus a per-facility per-time-step capacity;
* a capacity-aware greedy online algorithm (no competitive guarantee is
  claimed — the thesis leaves the analysis open; the benchmark measures
  its empirical gap);
* an exact MILP baseline extending the Figure 4.1 formulation with
  capacity rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import require
from ..core.lease import Lease
from ..core.store import LeaseStore
from ..errors import InfeasibleError, SolverError
from ..facility.model import Connection, FacilityLeasingInstance

try:
    import numpy as _np
    from scipy import optimize as _opt
    from scipy import sparse as _sparse

    HAVE_SCIPY = True
except Exception:  # pragma: no cover - exercised only without scipy
    HAVE_SCIPY = False


@dataclass(frozen=True)
class CapacitatedInstance:
    """A facility leasing instance plus per-facility step capacities."""

    base: FacilityLeasingInstance
    capacities: tuple[int, ...]

    def __post_init__(self) -> None:
        require(
            len(self.capacities) == self.base.num_facilities,
            "one capacity per facility required",
        )
        for capacity in self.capacities:
            require(capacity >= 1, "capacities must be >= 1")
        for batch in self.base.batches():
            require(
                len(batch.clients) <= sum(self.capacities),
                f"batch at t={batch.arrival} exceeds total capacity",
            )

    def is_feasible_solution(
        self, leases: list[Lease], connections: list[Connection]
    ) -> bool:
        """Base feasibility plus per-(facility, step) load <= capacity."""
        if not self.base.is_feasible_solution(leases, connections):
            return False
        load: dict[tuple[int, int], int] = {}
        arrival_of = {
            client.ident: client.arrival for client in self.base.clients
        }
        for connection in connections:
            key = (connection.facility, arrival_of[connection.client])
            load[key] = load.get(key, 0) + 1
            if load[key] > self.capacities[connection.facility]:
                return False
        return True


class OnlineCapacitatedFacilityLeasing:
    """Capacity-aware greedy online algorithm.

    Clients in a batch are served in order of decreasing isolation (their
    distance to the nearest facility), so hard-to-place clients pick
    first.  Each client either joins the nearest leased facility with
    spare capacity, or leases the facility window minimising
    (lease cost + distance) among facilities with spare capacity —
    choosing the lease type whose amortised per-day price is best for the
    observed demand rate so far.
    """

    def __init__(self, instance: CapacitatedInstance):
        self.instance = instance
        self.base = instance.base
        self.schedule = instance.base.schedule
        self.store = LeaseStore()
        self.connections: list[Connection] = []
        self._served_per_step = 0.0
        self._steps_seen = 0

    def _preferred_type(self) -> int:
        """Lease type chosen by the observed demand rate.

        A crude rate estimator: once the average batch exceeds one client
        per facility-step, longer leases amortise; before that, stay
        short.  This is the knob the benchmark's ablation exercises.
        """
        if self._steps_seen == 0:
            return 0
        rate = self._served_per_step / self._steps_seen
        index = 0
        while (
            index + 1 < self.schedule.num_types
            and rate * self.schedule[index + 1].length
            >= self.schedule[index + 1].cost / self.schedule[0].cost
        ):
            index += 1
        return index

    def on_demand(self, batch) -> None:
        """Serve one time step's batch under capacities."""
        t = batch.arrival
        self._steps_seen += 1
        self._served_per_step += len(batch.clients)
        # Capacities are per time step, so each batch starts fresh.
        remaining = {
            i: self.instance.capacities[i]
            for i in range(self.base.num_facilities)
        }
        order = sorted(
            batch.clients,
            key=lambda client: -min(
                self.base.distance(i, client.ident)
                for i in range(self.base.num_facilities)
            ),
        )
        for client in order:
            open_options = [
                i
                for i in range(self.base.num_facilities)
                if remaining[i] > 0 and self.store.covers(i, t)
            ]
            best_open = None
            if open_options:
                best_open = min(
                    open_options,
                    key=lambda i: self.base.distance(i, client.ident),
                )
            lease_options = [
                i
                for i in range(self.base.num_facilities)
                if remaining[i] > 0
            ]
            if not lease_options:
                raise InfeasibleError(
                    f"no capacity left for client {client.ident} at {t}"
                )
            type_index = self._preferred_type()
            best_new = min(
                lease_options,
                key=lambda i: self.base.lease_costs[i][type_index]
                + self.base.distance(i, client.ident),
            )
            new_total = self.base.lease_costs[best_new][
                type_index
            ] + self.base.distance(best_new, client.ident)
            if best_open is not None and (
                self.base.distance(best_open, client.ident) <= new_total
            ):
                target = best_open
            else:
                self.store.buy(
                    self.base.facility_lease(best_new, type_index, t)
                )
                target = best_new
            remaining[target] -= 1
            self.connections.append(
                Connection(
                    client=client.ident,
                    facility=target,
                    distance=self.base.distance(target, client.ident),
                )
            )

    @property
    def cost(self) -> float:
        """Leasing plus connection cost so far."""
        return self.store.total_cost + sum(
            connection.distance for connection in self.connections
        )

    @property
    def leases(self) -> tuple[Lease, ...]:
        return self.store.leases


def optimal_ilp(instance: CapacitatedInstance) -> float:
    """Exact optimum via MILP: Figure 4.1 plus capacity rows.

    Adds, for every facility ``i`` and arrival step ``t``,
    ``sum_{j in D_t} y_ij <= cap_i`` to the uncapacitated formulation.
    ``y`` stays continuous: capacities are integral and the constraint
    matrix block per step is an assignment polytope, so integral ``x``
    admits an integral optimal ``y``.
    """
    if not HAVE_SCIPY:
        raise SolverError("scipy is required for the capacitated ILP")
    base = instance.base
    arrival_steps = sorted({client.arrival for client in base.clients})
    windows: dict[tuple[int, int, int], Lease] = {}
    for t in arrival_steps:
        for i in range(base.num_facilities):
            for lease_type in base.schedule:
                lease = base.facility_lease(i, lease_type.index, t)
                windows[lease.key] = lease
    window_list = list(windows.values())
    num_windows = len(window_list)
    m = base.num_facilities
    clients = base.clients
    num_vars = num_windows + len(clients) * m

    def y_index(client: int, facility: int) -> int:
        return num_windows + client * m + facility

    costs = _np.zeros(num_vars)
    for index, window in enumerate(window_list):
        costs[index] = window.cost
    for client in clients:
        for facility in range(m):
            costs[y_index(client.ident, facility)] = base.distance(
                facility, client.ident
            )

    rows, cols, data, lower, upper = [], [], [], [], []
    row_count = 0

    def add_row(terms, lo, hi):
        nonlocal row_count
        for var, coeff in terms:
            rows.append(row_count)
            cols.append(var)
            data.append(coeff)
        lower.append(lo)
        upper.append(hi)
        row_count += 1

    for client in clients:
        add_row(
            [(y_index(client.ident, f), 1.0) for f in range(m)],
            1.0,
            _np.inf,
        )
    for client in clients:
        for facility in range(m):
            terms = [
                (index, 1.0)
                for index, window in enumerate(window_list)
                if window.resource == facility
                and window.covers(client.arrival)
            ]
            if not terms:
                continue
            terms.append((y_index(client.ident, facility), -1.0))
            add_row(terms, 0.0, _np.inf)
    for t in arrival_steps:
        step_clients = [c for c in clients if c.arrival == t]
        for facility in range(m):
            add_row(
                [
                    (y_index(c.ident, facility), 1.0)
                    for c in step_clients
                ],
                -_np.inf,
                float(instance.capacities[facility]),
            )

    matrix = _sparse.csr_matrix(
        (data, (rows, cols)), shape=(row_count, num_vars)
    )
    integrality = _np.zeros(num_vars)
    integrality[:num_windows] = 1
    result = _opt.milp(
        c=costs,
        constraints=_opt.LinearConstraint(
            matrix, lb=_np.asarray(lower), ub=_np.asarray(upper)
        ),
        integrality=integrality,
        bounds=_opt.Bounds(lb=0.0, ub=1.0),
    )
    if not result.success:
        raise SolverError(f"capacitated ILP failed: {result.message}")
    return float(result.fun)
