"""A deliberately small asyncio HTTP/1.1 server for the ops plane.

The admin plane needs exactly enough HTTP to be curl-able and
scrape-able: parse a request (method, path, query, headers, optional
body), hand it to a handler, write a response.  Connections are
keep-alive by default (HTTP/1.1 semantics), so a scraper polling
``/metrics`` at 4 Hz reuses one socket instead of churning through the
accept path — but each connection serves at most
:data:`MAX_REQUESTS_PER_CONNECTION` requests before the server closes
it, which bounds how long any single peer can pin a connection open.  A
client that sends ``Connection: close``, a parse error, or a cleanly
closed stream all end the loop early.  Nothing here touches the lease
wire protocol — the admin plane is a separate listener mounted *beside*
the lease listener, never in front of it.

Stdlib only, by constraint and by design: the whole point of the ops
plane is that an operator can hit it with ``curl`` against a process
that has no dependencies beyond CPython.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

#: Ceilings that keep a malformed or hostile peer from ballooning memory.
MAX_REQUEST_LINE = 8192
MAX_HEADER_LINES = 64
MAX_BODY_BYTES = 1 << 20

#: Keep-alive bound: a connection serves at most this many requests.
MAX_REQUESTS_PER_CONNECTION = 32

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that cannot be served; carries the status to send."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: the handler's entire view of the peer."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""


@dataclass
class HttpResponse:
    """One response: status plus a typed body."""

    status: int
    body: bytes
    content_type: str = "application/json"


def json_response(payload, status: int = 200) -> HttpResponse:
    body = json.dumps(payload, sort_keys=True, indent=2).encode("utf-8")
    return HttpResponse(status, body + b"\n", "application/json")


def text_response(
    text: str, status: int = 200, content_type: str = "text/plain; version=0.0.4"
) -> HttpResponse:
    return HttpResponse(status, text.encode("utf-8"), content_type)


async def _read_line(reader: asyncio.StreamReader) -> str:
    line = await reader.readline()
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(400, "header line too long")
    return line.decode("latin-1").rstrip("\r\n")


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed stream."""
    request_line = await _read_line(reader)
    if not request_line:
        return None
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {request_line!r}")
    method, target, _version = parts
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES):
        line = await _read_line(reader)
        if not line:
            break
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "too many header lines")
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise HttpError(400, f"bad content-length: {length!r}") from None
        if not 0 <= size <= MAX_BODY_BYTES:
            raise HttpError(400, f"content-length out of range: {size}")
        body = await reader.readexactly(size)
    return HttpRequest(
        method=method.upper(),
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
    )


def _encode_response(
    response: HttpResponse, *, keep_alive: bool = False
) -> bytes:
    reason = _REASONS.get(response.status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {response.status} {reason}\r\n"
        f"Content-Type: {response.content_type}\r\n"
        f"Content-Length: {len(response.body)}\r\n"
        f"Connection: {connection}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + response.body


class HttpServer:
    """Keep-alive asyncio HTTP listener with a per-connection request cap.

    ``handler`` is an async callable ``(HttpRequest) -> HttpResponse``;
    raising :class:`HttpError` maps to a JSON error body with that
    status, anything else maps to a 500 naming the exception type.
    """

    def __init__(self, handler):
        self._handler = handler
        self._server: asyncio.base_events.Server | None = None

    @property
    def port(self) -> int | None:
        if self._server is None:
            return None
        return self._server.sockets[0].getsockname()[1]

    async def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> int:
        self._server = await asyncio.start_server(
            self._serve_connection, host=host, port=port
        )
        return self.port

    async def close(self) -> None:
        if self._server is None:
            return
        self._server.close()
        try:
            await self._server.wait_closed()
        except Exception:
            pass
        self._server = None

    async def _serve_connection(self, reader, writer) -> None:
        try:
            await self._serve_requests(reader, writer)
        except asyncio.CancelledError:
            # Teardown cancelled us mid-request (e.g. a /profile capture
            # still sleeping); the connection is closed below either way.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _serve_requests(self, reader, writer) -> None:
        for served in range(MAX_REQUESTS_PER_CONNECTION):
            keep_alive = served + 1 < MAX_REQUESTS_PER_CONNECTION
            try:
                request = await read_request(reader)
            except HttpError as exc:
                # After a parse error the stream position is undefined;
                # answer and drop the connection.
                request = None
                keep_alive = False
                response = json_response(
                    {"error": exc.message}, status=exc.status
                )
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            else:
                if request is None:
                    return
                if request.headers.get("connection", "").lower() == "close":
                    keep_alive = False
                try:
                    response = await self._handler(request)
                except HttpError as exc:
                    # A handler error (404, 400 on a bad param) answers
                    # a fully parsed request — the stream is intact, so
                    # the connection stays reusable.
                    response = json_response(
                        {"error": exc.message}, status=exc.status
                    )
                except Exception as exc:  # pragma: no cover - defensive
                    response = json_response(
                        {"error": f"{type(exc).__name__}: {exc}"},
                        status=500,
                    )
            try:
                writer.write(
                    _encode_response(response, keep_alive=keep_alive)
                )
                await writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                return
            if not keep_alive:
                return
