"""The HTTP ops plane: routes admin URLs onto a serving backend.

:class:`AdminPlane` mounts the same small set of endpoints on either a
:class:`~repro.serve.server.LeaseServer` (one process, worker 0 only)
or a :class:`~repro.cluster.router.ClusterRouter` (the whole fleet) —
any object implementing the ``admin_*`` backend surface:

========================================  =====================================
endpoint                                  backend call
========================================  =====================================
``GET /metrics``                          ``admin_metrics() -> str``
``GET /metrics/history?family=&window=``  ``admin_history(family, window)``
``GET /healthz``                          ``admin_health() -> dict``
``GET /readyz``                           ``admin_ready() -> (bool, dict)``
``GET /leases?tenant=&resource=``         ``admin_leases(tenant, resource)``
``GET /trace/{trace_id}``                 ``admin_trace(trace_id)``
``GET /profile?seconds=``                 ``admin_profile(seconds)``
``POST /leases/{id}/force-release``       ``admin_force_release(lease_id)``
``POST /workers/{n}/drain``               ``admin_drain(n)``
``POST /workers/{n}/undrain``             ``admin_undrain(n)``
========================================  =====================================

Backend methods may be sync or async — the plane awaits coroutines and
passes plain values through — so each backend uses whichever is natural
(a router's drain must round-trip to a worker; a server's is a state
flip).  Reads are pure observation.  The two mutations are *durable by
construction*: force-release is injected into the shard dispatch queues
as a first-class ``release`` frame, so it rides the WAL, lands in the
applied trace as a replayable event, and carries the standard
retry-dedup identity — an admin mutation survives ``kill -9`` with
exactly-once semantics, same as any client op.

``/leases`` pagination is offset/limit over a stably sorted book
(resource, tenant, lease_id), so pages are consistent within one
barrier snapshot.
"""

from __future__ import annotations

import asyncio
import inspect

from .http import HttpError, HttpRequest, HttpResponse, HttpServer, \
    json_response, text_response

#: Pagination bounds for ``GET /leases``.
DEFAULT_PAGE_LIMIT = 256
MAX_PAGE_LIMIT = 4096

#: ``GET /profile`` capture-window bounds (seconds).
DEFAULT_PROFILE_SECONDS = 1.0
MAX_PROFILE_SECONDS = 30.0


async def _call(value):
    """Await a backend result if the backend chose to be async."""
    if inspect.isawaitable(value):
        return await value
    return value


def _int_param(query: dict, name: str, default: int | None) -> int | None:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise HttpError(400, f"{name} must be an integer, got {raw!r}") from None
    if value < 0:
        raise HttpError(400, f"{name} must be >= 0, got {value}")
    return value


def _float_param(query: dict, name: str, default: float | None) -> float | None:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise HttpError(400, f"{name} must be a number, got {raw!r}") from None
    if value <= 0:
        raise HttpError(400, f"{name} must be > 0, got {value}")
    return value


class AdminPlane:
    """Ops-plane HTTP listener over one ``admin_*`` backend."""

    def __init__(self, backend):
        self.backend = backend
        self._http = HttpServer(self._route)

    @property
    def port(self) -> int | None:
        return self._http.port

    async def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind the plane; returns the bound port."""
        return await self._http.start_tcp(host, port)

    async def close(self) -> None:
        await self._http.close()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, request: HttpRequest) -> HttpResponse:
        parts = [p for p in request.path.split("/") if p]
        if request.method == "GET":
            return await self._route_get(request, parts)
        if request.method == "POST":
            return await self._route_post(request, parts)
        raise HttpError(405, f"unsupported method {request.method}")

    async def _route_get(self, request, parts) -> HttpResponse:
        if parts == ["metrics"]:
            return text_response(await _call(self.backend.admin_metrics()))
        if parts == ["metrics", "history"]:
            family = request.query.get("family")
            window = _float_param(request.query, "window", None)
            return json_response(
                await _call(
                    self.backend.admin_history(family=family, window=window)
                )
            )
        if parts == ["profile"]:
            seconds = _float_param(
                request.query, "seconds", DEFAULT_PROFILE_SECONDS
            )
            seconds = min(seconds, MAX_PROFILE_SECONDS)
            return json_response(
                await _call(self.backend.admin_profile(seconds))
            )
        if parts == ["healthz"]:
            return json_response(await _call(self.backend.admin_health()))
        if parts == ["readyz"]:
            ready, detail = await _call(self.backend.admin_ready())
            return json_response(detail, status=200 if ready else 503)
        if parts == ["leases"]:
            return await self._get_leases(request)
        if len(parts) == 2 and parts[0] == "trace":
            tree = await _call(self.backend.admin_trace(parts[1]))
            if tree is None:
                raise HttpError(404, f"no spans for trace {parts[1]!r}")
            return json_response({"trace": parts[1], "roots": tree})
        raise HttpError(404, f"no such resource: GET {request.path}")

    async def _get_leases(self, request) -> HttpResponse:
        tenant = request.query.get("tenant")
        resource = _int_param(request.query, "resource", None)
        offset = _int_param(request.query, "offset", 0)
        limit = _int_param(request.query, "limit", DEFAULT_PAGE_LIMIT)
        limit = min(limit, MAX_PAGE_LIMIT)
        book = await _call(
            self.backend.admin_leases(tenant=tenant, resource=resource)
        )
        page = book[offset : offset + limit]
        return json_response(
            {
                "leases": page,
                "total": len(book),
                "offset": offset,
                "limit": limit,
            }
        )

    async def _route_post(self, request, parts) -> HttpResponse:
        if len(parts) == 3 and parts[0] == "leases" \
                and parts[2] == "force-release":
            result = await _call(self.backend.admin_force_release(parts[1]))
            if result is None:
                raise HttpError(404, f"no live lease {parts[1]!r}")
            return json_response(result)
        if len(parts) == 3 and parts[0] == "workers" \
                and parts[2] in ("drain", "undrain"):
            try:
                worker = int(parts[1])
            except ValueError:
                raise HttpError(
                    400, f"worker must be an integer, got {parts[1]!r}"
                ) from None
            method = (
                self.backend.admin_drain
                if parts[2] == "drain"
                else self.backend.admin_undrain
            )
            state = await _call(method(worker))
            if state is None:
                raise HttpError(404, f"no such worker {worker}")
            return json_response({"worker": worker, "state": state})
        raise HttpError(404, f"no such resource: POST {request.path}")
