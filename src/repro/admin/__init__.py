"""repro.admin — the HTTP ops plane over the serving layers.

A stdlib-only asyncio HTTP/1.1 listener (:mod:`repro.admin.http`)
mounted beside the lease listener on both :class:`LeaseServer` and
:class:`ClusterRouter`, routing ops URLs onto a shared ``admin_*``
backend surface (:mod:`repro.admin.plane`): Prometheus scrape, liveness
and readiness, the paginated live lease book, per-trace span trees, and
two durable mutations — force-release and worker drain/undrain — that
ride the shard dispatch queues as first-class protocol frames, so they
are WAL'd, replayable, and exactly-once under crash-retry like any
client op.
"""

from .http import (
    HttpError,
    HttpRequest,
    HttpResponse,
    HttpServer,
    json_response,
    read_request,
    text_response,
)
from .plane import DEFAULT_PAGE_LIMIT, MAX_PAGE_LIMIT, AdminPlane

__all__ = [
    "AdminPlane",
    "DEFAULT_PAGE_LIMIT",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "MAX_PAGE_LIMIT",
    "json_response",
    "read_request",
    "text_response",
]
