"""Metrics history: a bounded in-process time-series ring over snapshots.

The live registry answers "what is the counter *now*"; debugging a fleet
mid-incident needs "what was it doing over the last minute".  A
:class:`MetricsHistory` closes that gap without any external store: it
periodically captures :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
into a bounded ring (``capacity`` samples, oldest evicted first) and
answers windowed delta/rate queries over it — counter deltas become
events/sec, histogram bucket deltas become p50/p95/p99 *over the
window* rather than since process start.

Discipline matches the rest of :mod:`repro.obs`:

* The clock is injectable and *carried, not called* at construction —
  timestamps are whatever ``clock()`` returns at each :meth:`sample`.
* The ring itself never schedules anything.  The serving layers drive
  ``sample()`` from an asyncio task at ``interval`` seconds
  (:class:`~repro.serve.server.LeaseServer` and
  :class:`~repro.cluster.router.ClusterRouter` both do); tests drive it
  by hand with a fake clock.
* Disabled is free: a history over a disabled registry (or over
  ``None``) stores nothing and answers empty queries, so the off path
  costs one attribute check.

Exposed as ``GET /metrics/history?family=&window=`` on both the server
and router admin planes.
"""

from __future__ import annotations

import time
from collections import deque

from ..errors import ModelError
from .metrics import MetricsRegistry

#: Default seconds between samples when the serving layer drives the ring.
DEFAULT_HISTORY_INTERVAL = 1.0
#: Default ring size: with the default interval, ~4 minutes of history.
DEFAULT_HISTORY_CAPACITY = 256

_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


class MetricsHistory:
    """Bounded ring of ``(timestamp, registry snapshot)`` samples."""

    __slots__ = ("registry", "interval", "capacity", "clock", "enabled",
                 "_samples")

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        interval: float = DEFAULT_HISTORY_INTERVAL,
        capacity: int = DEFAULT_HISTORY_CAPACITY,
        clock=None,
    ):
        if interval <= 0:
            raise ModelError("history interval must be > 0 seconds")
        if capacity < 2:
            raise ModelError("history capacity must be >= 2 samples")
        self.registry = registry
        self.interval = float(interval)
        self.capacity = int(capacity)
        self.enabled = registry is not None and registry.enabled
        if clock is None:
            clock = registry.clock if registry is not None else time.monotonic
        self.clock = clock
        self._samples: deque[tuple[float, dict]] = deque(maxlen=self.capacity)

    def __len__(self) -> int:
        return len(self._samples)

    def sample(self) -> None:
        """Capture one ``(clock(), snapshot())`` pair into the ring."""
        if not self.enabled:
            return
        self._samples.append((self.clock(), self.registry.snapshot()))

    def query(self, family: str | None = None,
              window: float | None = None) -> dict:
        """Windowed deltas and rates over the sampled history.

        ``window`` keeps only samples at most that many seconds older
        than the newest one (``None`` = the whole ring); ``family``
        restricts the answer to one metric family.  Counters report
        ``first``/``last``/``delta``/``rate_per_sec``; gauges report
        ``last``/``min``/``max``; histograms report the windowed
        ``count_delta``/``sum_delta``/``rate_per_sec`` plus
        p50/p95/p99 estimated from the window's bucket *deltas* — the
        "p95 over the last N seconds" a point-in-time scrape cannot
        answer.  Rates divide by the sampled span, so they are exact for
        the ring's own timeline regardless of wall-clock jitter.
        """
        samples = list(self._samples)
        if window is not None:
            if window <= 0:
                raise ModelError("history window must be > 0 seconds")
            newest = samples[-1][0] if samples else 0.0
            samples = [s for s in samples if s[0] >= newest - window]
        out = {
            "enabled": self.enabled,
            "interval": self.interval,
            "capacity": self.capacity,
            "samples": len(samples),
            "window": window,
            "span_seconds": (
                samples[-1][0] - samples[0][0] if len(samples) > 1 else 0.0
            ),
            "families": {},
        }
        if len(samples) < 2:
            return out
        t_first, first = samples[0]
        t_last, last = samples[-1]
        span = t_last - t_first
        names = sorted(last)
        if family is not None:
            names = [name for name in names if name == family]
        for name in names:
            fam = last[name]
            prior = first.get(name, {})
            rows = []
            for series in fam["series"]:
                before = _matching_series(prior, series["labels"])
                if fam["type"] == "histogram":
                    rows.append(
                        _histogram_row(series, before, span)
                    )
                elif fam["type"] == "counter":
                    rows.append(
                        _counter_row(series, before, span)
                    )
                else:
                    rows.append(_gauge_row(series, samples, name))
            out["families"][name] = {"type": fam["type"], "series": rows}
        return out


def _matching_series(family: dict, labels: dict) -> dict | None:
    for series in family.get("series", ()):
        if series["labels"] == labels:
            return series
    return None


def _counter_row(series: dict, before: dict | None, span: float) -> dict:
    first = before["value"] if before is not None else 0
    delta = series["value"] - first
    return {
        "labels": series["labels"],
        "first": first,
        "last": series["value"],
        "delta": delta,
        "rate_per_sec": round(delta / span, 6) if span > 0 else None,
    }


def _gauge_row(series: dict, samples, name: str) -> dict:
    values = []
    for _, snapshot in samples:
        match = _matching_series(snapshot.get(name, {}), series["labels"])
        if match is not None:
            values.append(match["value"])
    return {
        "labels": series["labels"],
        "last": series["value"],
        "min": min(values) if values else series["value"],
        "max": max(values) if values else series["value"],
    }


def _histogram_row(series: dict, before: dict | None, span: float) -> dict:
    count_first = before["count"] if before is not None else 0
    sum_first = before["sum"] if before is not None else 0.0
    count_delta = series["count"] - count_first
    row = {
        "labels": series["labels"],
        "count_delta": count_delta,
        "sum_delta": series["sum"] - sum_first,
        "rate_per_sec": (
            round(count_delta / span, 6) if span > 0 else None
        ),
    }
    deltas = _bucket_deltas(
        series["buckets"], before["buckets"] if before is not None else None
    )
    for label, q in _QUANTILES:
        row[label] = _delta_quantile(deltas, count_delta, q)
    return row


def _bucket_deltas(
    last: dict, first: dict | None
) -> list[tuple[float, int]]:
    """Per-bucket (non-cumulative) windowed counts, by ascending bound.

    Snapshot buckets are cumulative and keyed by formatted bound
    (``+Inf`` last); the window's own distribution is the difference of
    the two cumulative ladders, de-accumulated bucket by bucket.
    """
    def bound(key: str) -> float:
        return float("inf") if key == "+Inf" else float(key)

    ordered = sorted(last, key=bound)
    deltas = []
    previous = 0
    for key in ordered:
        cumulative = last[key] - (first.get(key, 0) if first else 0)
        deltas.append((bound(key), cumulative - previous))
        previous = cumulative
    return deltas


def _delta_quantile(
    deltas: list[tuple[float, int]], total: int, q: float
) -> float:
    """Interpolated quantile over windowed bucket deltas.

    Mirrors :meth:`repro.obs.metrics.Histogram.quantile`: find the
    bucket the rank lands in, interpolate between its edges, clamp the
    overflow bucket to the last finite bound, 0.0 when empty.
    """
    if total <= 0:
        return 0.0
    finite = [b for b, _ in deltas if b != float("inf")]
    top = finite[-1] if finite else 0.0
    rank = q * total
    running = 0
    for index, (bound, count) in enumerate(deltas):
        previous = running
        running += count
        if running >= rank and count:
            if bound == float("inf"):
                return top
            lo = 0.0 if index == 0 else deltas[index - 1][0]
            return lo + (bound - lo) * ((rank - previous) / count)
    return top


#: Shared disabled ring for callers that want "maybe history" without a
#: None check — samples nothing, answers empty queries.
NULL_HISTORY = MetricsHistory(None)
