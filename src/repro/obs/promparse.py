"""Parse and validate the Prometheus text exposition format.

The in-repo scrape validator: CI drives a live fleet, hits the
``metrics`` protocol verb, and runs the returned text through
:func:`validate_exposition` — so "the server renders something that
looks like metrics" is actually "the exposition parses and its
structural invariants hold".  The same parser backs the round-trip
tests (``parse(render(registry))`` must reproduce the registry's
snapshot values).

:func:`parse_exposition` understands the subset the renderer emits plus
the standard format's escapes: ``# HELP`` / ``# TYPE`` comments, one
sample per line as ``name{label="value",...} number``, histogram
families spread over ``_bucket`` / ``_sum`` / ``_count`` suffixed
samples.  Validation checks, per family:

* every sample line belongs to a ``# TYPE``-declared family;
* counter and histogram values are finite and non-negative; gauges
  merely finite;
* histograms: every series has a ``+Inf`` bucket, bucket ``le`` bounds
  are strictly increasing in emission order (duplicates and shuffled
  buckets are each flagged), bucket counts are finite and cumulative
  (non-decreasing in ``le`` order), the ``+Inf`` bucket equals
  ``_count``, and ``_sum`` / ``_count`` exist and are finite.

:func:`relabel_exposition` is the transformation counterpart: it
injects a fixed label set into every sample line of an exposition —
how the cluster router folds its workers' own scrapes into one
fleet-wide exposition, each prefixed with ``worker="N"``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ModelError


@dataclass
class ParsedFamily:
    """One parsed metric family: declared type, help, and its samples."""

    name: str
    type: str = ""
    help: str = ""
    #: (sample name, labels) -> value; sample name keeps any
    #: ``_bucket``/``_sum``/``_count`` suffix.
    samples: list[tuple[str, dict, float]] = field(default_factory=list)


_SUFFIXES = ("_bucket", "_sum", "_count")


def _family_of(sample_name: str, declared: dict) -> str:
    """The family a sample belongs to (strip histogram suffixes)."""
    for suffix in _SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in declared:
                return base
    return sample_name


def _unescape(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        c = value[i]
        if c == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, nxt))
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _parse_labels(body: str, line_no: int) -> dict:
    labels: dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.find("=", i)
        if eq < 0:
            raise ModelError(f"line {line_no}: malformed label set {body!r}")
        key = body[i:eq].strip().lstrip(",").strip()
        if eq + 1 >= len(body) or body[eq + 1] != '"':
            raise ModelError(
                f"line {line_no}: label value for {key!r} is not quoted"
            )
        j = eq + 2
        raw: list[str] = []
        while j < len(body):
            c = body[j]
            if c == "\\" and j + 1 < len(body):
                raw.append(body[j : j + 2])
                j += 2
                continue
            if c == '"':
                break
            raw.append(c)
            j += 1
        else:
            raise ModelError(
                f"line {line_no}: unterminated label value for {key!r}"
            )
        labels[key] = _unescape("".join(raw))
        i = j + 1
    return labels


def _parse_sample(line: str, line_no: int) -> tuple[str, dict, float]:
    brace = line.find("{")
    if brace >= 0:
        close = line.rfind("}")
        if close < brace:
            raise ModelError(f"line {line_no}: unbalanced braces")
        name = line[:brace].strip()
        labels = _parse_labels(line[brace + 1 : close], line_no)
        rest = line[close + 1 :].strip()
    else:
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise ModelError(f"line {line_no}: no value on sample line")
        name, rest = parts[0], parts[1].strip()
        labels = {}
    # A trailing timestamp (standard format) would be a second token;
    # the in-repo renderer never emits one, so refuse rather than guess.
    value_token = rest.split()[0] if rest else ""
    if not value_token or len(rest.split()) != 1:
        raise ModelError(f"line {line_no}: expected exactly one value, got {rest!r}")
    try:
        value = float(value_token)
    except ValueError as exc:
        raise ModelError(
            f"line {line_no}: unparseable value {value_token!r}"
        ) from exc
    return name, labels, value


def parse_exposition(text: str) -> dict[str, ParsedFamily]:
    """Parse one text exposition into its families, strictly.

    Raises :class:`~repro.errors.ModelError` on any line that is neither
    a comment, blank, nor a well-formed sample, and on samples whose
    family was never declared with ``# TYPE``.
    """
    families: dict[str, ParsedFamily] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                family = families.setdefault(name, ParsedFamily(name))
                if parts[1] == "TYPE":
                    kind = parts[3] if len(parts) > 3 else ""
                    if kind not in ("counter", "gauge", "histogram"):
                        raise ModelError(
                            f"line {line_no}: unknown metric type {kind!r}"
                        )
                    if family.type:
                        raise ModelError(
                            f"line {line_no}: duplicate TYPE for {name}"
                        )
                    family.type = kind
                else:
                    family.help = parts[3] if len(parts) > 3 else ""
            continue
        name, labels, value = _parse_sample(line, line_no)
        base = _family_of(name, families)
        family = families.get(base)
        if family is None or not family.type:
            raise ModelError(
                f"line {line_no}: sample {name!r} has no # TYPE declaration"
            )
        family.samples.append((name, labels, value))
    return families


def _series_key(labels: dict) -> tuple:
    return tuple(sorted((k, v) for k, v in labels.items() if k != "le"))


def _validate_histogram(family: ParsedFamily) -> list[str]:
    failures: list[str] = []
    buckets: dict[tuple, list[tuple[float, float]]] = {}
    sums: dict[tuple, float] = {}
    counts: dict[tuple, float] = {}
    for name, labels, value in family.samples:
        key = _series_key(labels)
        if name == f"{family.name}_bucket":
            le = labels.get("le")
            if le is None:
                failures.append(f"{family.name}: bucket sample without le")
                continue
            bound = math.inf if le == "+Inf" else float(le)
            buckets.setdefault(key, []).append((bound, value))
        elif name == f"{family.name}_sum":
            sums[key] = value
        elif name == f"{family.name}_count":
            counts[key] = value
        else:
            failures.append(
                f"{family.name}: unexpected histogram sample {name!r}"
            )
    for key, series in buckets.items():
        where = f"{family.name}{dict(key) if key else ''}"
        emitted = [b for b, _ in series]
        # Bounds must arrive strictly increasing: a duplicated le is a
        # double-emitted bucket, a shuffled one a mangled exposition —
        # sorting would mask both, so flag them before reordering.
        if len(set(emitted)) != len(emitted):
            failures.append(f"{where}: duplicate le bucket bounds")
        elif any(b2 < b1 for b1, b2 in zip(emitted, emitted[1:])):
            failures.append(f"{where}: bucket le bounds out of order")
        series.sort()
        bounds = [b for b, _ in series]
        values = [v for _, v in series]
        if any(math.isnan(v) or math.isinf(v) for v in values):
            failures.append(f"{where}: non-finite bucket count")
            continue
        if not bounds or bounds[-1] != math.inf:
            failures.append(f"{where}: no +Inf bucket")
            continue
        if any(v2 < v1 for v1, v2 in zip(values, values[1:])):
            failures.append(f"{where}: cumulative bucket counts decrease")
        if key not in counts:
            failures.append(f"{where}: missing _count sample")
        elif math.isnan(counts[key]) or math.isinf(counts[key]):
            failures.append(f"{where}: non-finite _count value")
        elif values[-1] != counts[key]:
            failures.append(
                f"{where}: +Inf bucket {values[-1]} != _count {counts[key]}"
            )
        if key not in sums:
            failures.append(f"{where}: missing _sum sample")
        elif math.isnan(sums[key]) or math.isinf(sums[key]):
            failures.append(f"{where}: non-finite _sum value")
    for key in counts:
        if key not in buckets:
            failures.append(
                f"{family.name}{dict(key) if key else ''}: "
                "_count without any buckets"
            )
    return failures


def validate_exposition(text: str) -> list[str]:
    """Structural validation; returns human-readable failures (empty = ok).

    Parsing errors are reported as failures rather than raised, so CI
    can print them all and exit non-zero once.
    """
    try:
        families = parse_exposition(text)
    except ModelError as exc:
        return [str(exc)]
    failures: list[str] = []
    if not families:
        return ["exposition declares no metric families"]
    for family in families.values():
        if not family.type:
            failures.append(f"{family.name}: HELP without TYPE")
            continue
        if family.type == "histogram":
            failures.extend(_validate_histogram(family))
            continue
        for name, labels, value in family.samples:
            if name != family.name:
                failures.append(
                    f"{family.name}: unexpected sample name {name!r}"
                )
            if math.isnan(value) or math.isinf(value):
                failures.append(f"{name}: non-finite value {value!r}")
            elif family.type == "counter" and value < 0:
                failures.append(f"{name}: negative counter value {value!r}")
    return failures


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def relabel_exposition(text: str, **labels: str) -> str:
    """Inject a fixed label set into every sample line of an exposition.

    Comments and blank lines pass through untouched; every sample gains
    the given labels ahead of its existing ones.  The caller owns
    disjointness — injecting a label a sample already carries would
    leave the duplicate in place.  Used by the cluster router to fold
    per-worker scrapes into one exposition, each sample tagged
    ``worker="N"``.
    """
    injected = ",".join(
        f'{key}="{_escape_label(str(value))}"'
        for key, value in sorted(labels.items())
    )
    if not injected:
        return text
    out: list[str] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            out.append(raw)
            continue
        brace = raw.find("{")
        if brace >= 0:
            close = raw.rfind("}")
            if close < brace:
                raise ModelError(f"unbalanced braces on sample line {raw!r}")
            body = raw[brace + 1 : close].strip()
            joined = f"{injected},{body}" if body else injected
            out.append(raw[:brace] + "{" + joined + raw[close:])
        else:
            parts = raw.split(None, 1)
            if len(parts) != 2:
                raise ModelError(f"no value on sample line {raw!r}")
            out.append(parts[0] + "{" + injected + "} " + parts[1])
    tail = "\n" if text.endswith("\n") else ""
    return "\n".join(out) + tail


def merge_expositions(*texts: str) -> str:
    """Concatenate expositions into one valid document.

    Plain concatenation breaks when two inputs declare the same family
    (e.g. every worker's scrape carries its own ``# TYPE
    broker_acquires_total``): the result has duplicate declarations,
    which strict parsers — including :func:`parse_exposition` — reject.
    This keeps only the *first* ``# HELP`` / ``# TYPE`` line per family
    and passes every sample line through, so same-name families merge
    into one declaration with the union of their (caller-disjoint)
    series.  Used by the cluster router to fold relabeled per-worker
    scrapes behind its own families.
    """
    declared: set[tuple[str, str]] = set()
    out: list[str] = []
    for text in texts:
        for raw in text.splitlines():
            line = raw.strip()
            if line.startswith("#"):
                parts = line.split(None, 3)
                if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                    key = (parts[1], parts[2])
                    if key in declared:
                        continue
                    declared.add(key)
            out.append(raw)
    return "\n".join(out) + ("\n" if out else "")
