"""Causal trace trees: merge fleet JSONL spans into one tree per op.

The serve layer threads a trace context through the wire protocol —
the client mints a trace id per mutation, the router re-parents it on
relay, the worker's dispatch span inherits it — so one logical op
leaves spans in up to three different processes' JSONL files.  This
module is the read side: feed it the merged span stream of a whole
fleet and it reconstructs one causal tree per trace id, linked by the
``span_id``/``parent`` fields :class:`~repro.obs.trace.TraceSink`
emits.

Ids are 16-hex-digit u64 words (:func:`new_id`), the same words the
wire protocol's ``trace`` field carries, so a span file and a packet
capture name the same op identically.

Spans without a trace context (the PR 6 shape) are ignored here — they
still serve the latency-replay use case, but they are not part of any
causal tree.  A span whose ``parent`` never appears in the stream
(e.g. the client's file was not merged in) becomes a root of its own,
so partial merges degrade to partial trees instead of errors.
"""

from __future__ import annotations

import json
import secrets
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable


def new_id() -> str:
    """A fresh 16-hex-digit id word for a trace or span."""
    return secrets.token_hex(8)


def load_spans(paths: Iterable[str | Path]) -> list[dict]:
    """Every span object from the given JSONL files, in file order.

    Blank lines are skipped; a malformed line raises — a trace file is
    a machine artifact, and silent truncation would hide the very spans
    an investigation is after.
    """
    spans: list[dict] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                span = json.loads(line)
                if not isinstance(span, dict):
                    raise ValueError(
                        f"{path}:{lineno}: span line is not a JSON object"
                    )
                spans.append(span)
    return spans


@dataclass
class SpanNode:
    """One span plus its resolved children, ordered causally."""

    span: dict
    children: list["SpanNode"] = field(default_factory=list)

    def walk(self):
        """This node then every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()


def _sort_key(node: SpanNode):
    return (node.span.get("t_enq", 0.0), node.span.get("span_id") or "")


def build_trace_trees(spans: Iterable[dict]) -> dict[str, list[SpanNode]]:
    """Group traced spans by trace id and link them into causal trees.

    Returns ``{trace_id: [root nodes]}``.  A healthy end-to-end trace
    has exactly one root (the client span); orphaned spans — parents
    missing from the merged stream — surface as extra roots rather
    than disappearing.

    Duplicate spans — the same ``(trace, span_id)`` seen twice, e.g. a
    live buffer federated through the router *and* the same sink's file
    merged offline — collapse to the first occurrence, so overlapping
    sources never double a node or fork the tree.
    """
    by_trace: dict[str, list[dict]] = {}
    seen: set[tuple[str, str]] = set()
    for span in spans:
        trace = span.get("trace")
        if trace is None:
            continue
        trace = str(trace)
        span_id = span.get("span_id")
        if span_id is not None:
            key = (trace, str(span_id))
            if key in seen:
                continue
            seen.add(key)
        by_trace.setdefault(trace, []).append(span)
    trees: dict[str, list[SpanNode]] = {}
    for trace, members in by_trace.items():
        nodes = {}
        anonymous: list[SpanNode] = []
        for span in members:
            node = SpanNode(span)
            span_id = span.get("span_id")
            if span_id is None:
                anonymous.append(node)
            else:
                nodes[span_id] = node
        roots: list[SpanNode] = []
        for node in list(nodes.values()) + anonymous:
            parent = node.span.get("parent")
            parent_node = nodes.get(parent) if parent is not None else None
            if parent_node is None or parent_node is node:
                roots.append(node)
            else:
                parent_node.children.append(node)
        for node in nodes.values():
            node.children.sort(key=_sort_key)
        roots.sort(key=_sort_key)
        trees[trace] = roots
    return trees


def trace_tree_payload(roots: list[SpanNode]) -> list[dict]:
    """JSON-ready nested form of one trace's tree (the admin endpoint)."""
    def fold(node: SpanNode) -> dict:
        payload = dict(node.span)
        payload["children"] = [fold(child) for child in node.children]
        return payload

    return [fold(root) for root in roots]


def render_trace_tree(trace: str, roots: list[SpanNode]) -> str:
    """Human-readable indented tree for ``engine trace-tree``."""
    lines = [f"trace {trace}"]

    def describe(span: dict) -> str:
        kind = span.get("kind") or "span"
        op = span.get("op", "?")
        who = span.get("tenant")
        where = span.get("resource")
        duration = None
        if "t_reply" in span and "t_enq" in span:
            duration = (span["t_reply"] - span["t_enq"]) * 1e3
        parts = [f"{kind} {op}"]
        if who is not None:
            parts.append(f"tenant={who}")
        if where is not None:
            parts.append(f"resource={where}")
        if span.get("span_id"):
            parts.append(f"span={span['span_id']}")
        if duration is not None:
            parts.append(f"{duration:.3f}ms")
        return " ".join(parts)

    def walk(node: SpanNode, depth: int) -> None:
        lines.append("  " * depth + "- " + describe(node.span))
        for child in node.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 1)
    return "\n".join(lines)
