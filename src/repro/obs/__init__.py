"""repro.obs — the observability subsystem: metrics, scrape, and traces.

The ops-plane layer the ROADMAP's "Durability and an ops plane" item
names: counters, gauges, and fixed-bucket histograms in a labeled
registry with Prometheus text exposition, an in-repo parser that
validates any exposition (CI scrapes a live fleet through it), and a
structured per-op JSONL trace sink.  Instrumentation threads through
every serving layer — broker counters and grant-table gauges, per-op
dispatch latency in :mod:`repro.serve.server`, per-worker link gauges in
:mod:`repro.cluster.router` — behind one determinism contract: every
clock is injectable, disabled instrumentation is allocation-free, and
enabling metrics or tracing never changes a served or clustered
aggregate report (CI-gated byte-identity, metrics on and off).

* :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` in a :class:`MetricsRegistry`; ``render_prometheus``
  and a JSON ``snapshot`` form; shared null instruments for the disabled
  path.
* :mod:`repro.obs.promparse` — parser for the text exposition format
  plus :func:`validate_exposition`, the structural validator the CI
  scrape jobs and the round-trip tests run.
* :mod:`repro.obs.trace` — :class:`TraceSink`, flag-gated JSONL spans
  (request id, tenant, resource, op, enqueue/dispatch/reply times, and
  the distributed trace context: trace id, span id, parent, kind).
* :mod:`repro.obs.tracetree` — the read side of distributed tracing:
  merge a fleet's JSONL span files and reconstruct one causal tree per
  trace id (``engine trace-tree`` and the admin plane's
  ``/trace/{id}`` endpoint).
* :mod:`repro.obs.export` — scrape-time exporters folding broker /
  session / shard state into a registry, shared by the server's and the
  router's ``metrics`` protocol verb.
* :mod:`repro.obs.history` — :class:`MetricsHistory`, a bounded ring of
  registry snapshots answering windowed delta/rate queries (the admin
  planes' ``/metrics/history`` endpoint).
* :mod:`repro.obs.profile` — :class:`SamplingProfiler`, a thread-based
  collapsed-stack sampler with zero cost when off (``/profile`` and
  ``engine flamegraph``).
"""

from .export import export_sessions, export_shards
from .history import (
    DEFAULT_HISTORY_CAPACITY,
    DEFAULT_HISTORY_INTERVAL,
    NULL_HISTORY,
    MetricsHistory,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    latency_summary,
)
from .profile import (
    DEFAULT_PROFILE_CAPACITY,
    DEFAULT_PROFILE_HZ,
    SamplingProfiler,
    collapse_frame,
    render_collapsed,
)
from .promparse import (
    ParsedFamily,
    merge_expositions,
    parse_exposition,
    relabel_exposition,
    validate_exposition,
)
from .trace import NULL_TRACE, TraceSink
from .tracetree import (
    SpanNode,
    build_trace_trees,
    load_spans,
    new_id,
    render_trace_tree,
    trace_tree_payload,
)

__all__ = [
    "Counter",
    "DEFAULT_HISTORY_CAPACITY",
    "DEFAULT_HISTORY_INTERVAL",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_PROFILE_CAPACITY",
    "DEFAULT_PROFILE_HZ",
    "Gauge",
    "Histogram",
    "MetricsHistory",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_HISTORY",
    "NULL_TRACE",
    "ParsedFamily",
    "SamplingProfiler",
    "SpanNode",
    "TraceSink",
    "build_trace_trees",
    "collapse_frame",
    "export_sessions",
    "export_shards",
    "latency_summary",
    "load_spans",
    "new_id",
    "parse_exposition",
    "merge_expositions",
    "relabel_exposition",
    "render_collapsed",
    "render_trace_tree",
    "trace_tree_payload",
    "validate_exposition",
]
