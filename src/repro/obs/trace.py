"""Flag-gated structured tracing: one JSON object per op, one per line.

A :class:`TraceSink` is the ops-plane counterpart of the metrics
registry: where histograms aggregate, the sink keeps every span.  The
server's dispatch loop emits one span per queued op — request id,
tenant, resource, op kind, and the enqueue/dispatch/reply timestamps
from the sink's injectable monotonic clock — so a captured trace can be
replayed against the latency histograms (`t_reply - t_enq` per line is
exactly what ``serve_op_latency_seconds`` observed).

Tracing is off unless a path is configured (``--trace-jsonl`` on
``engine serve``); the disabled sink is a shared null object whose
``emit`` is a no-op, keeping the hot path allocation-free.  Spans never
feed verified reports: timestamps are wall-clock and the byte-identity
gates run with tracing both on and off.
"""

from __future__ import annotations

import json
import os
import time

#: One shared encoder for the hot emit path.  ``json.dumps`` with
#: non-default kwargs builds a fresh ``JSONEncoder`` per call, which is
#: most of the per-span cost; a cached encoder halves it.
_ENCODE = json.JSONEncoder(sort_keys=True, separators=(",", ":")).encode

#: value -> its JSON rendering, for the handful of op/tenant/resource
#: values a server ever sees.  Rendering a span is the per-request cost
#: of tracing, and the string fields repeat from a tiny set — caching
#: their quoted forms lets :meth:`TraceSink.span` build the standard
#: line with one f-string instead of a dict build plus a full encode.
_QUOTED: dict = {}


def _quoted(value) -> str:
    rendered = _QUOTED.get(value)
    if rendered is None:
        rendered = _ENCODE(value)
        _QUOTED[value] = rendered
    return rendered


class TraceSink:
    """Append-only JSONL span writer with an injectable clock.

    Spans are buffered in-process and flushed on every ``flush()`` /
    ``close()`` and every ``flush_every`` emits, so a crashed process
    loses at most one buffer of spans while the hot path stays a list
    append plus a dict build.
    """

    __slots__ = ("path", "clock", "enabled", "emitted", "_buffer", "_flush_every")

    def __init__(self, path=None, *, clock=time.monotonic, flush_every: int = 256):
        self.path = path
        self.clock = clock
        self.enabled = path is not None
        self.emitted = 0
        self._buffer: list[str] = []
        self._flush_every = max(1, int(flush_every))
        if self.enabled:
            # Append, never truncate: a respawned worker reopens the
            # same path and must keep its pre-crash spans (the federated
            # /trace/{id} and offline merge both rely on them).  Opening
            # in append mode still creates the file, so a run that emits
            # nothing leaves an (empty) trace file rather than none.
            # Like the WAL, the sink owns its directory: `engine cluster
            # --trace-root DIR` points every worker at a DIR nobody has
            # made yet.
            parent = os.path.dirname(str(self.path))
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(self.path, "a", encoding="utf-8"):
                pass

    def emit(self, span: dict) -> None:
        """Record one span (a flat JSON-serialisable dict)."""
        if not self.enabled:
            return
        self._buffer.append(_ENCODE(span))
        self.emitted += 1
        if len(self._buffer) >= self._flush_every:
            self.flush()

    def span(self, *, op: str, tenant, resource, request_id: int,
             t_enq: float, t_disp: float, t_reply: float,
             trace: str | None = None, span_id: str | None = None,
             parent: str | None = None, kind: str | None = None) -> None:
        """Emit the standard dispatch-loop span shape.

        The four optional fields carry the distributed trace context:
        ``trace`` is the 16-hex trace id shared by every hop of one op,
        ``span_id`` names this hop, ``parent`` names the hop that caused
        it (``None`` at the root), and ``kind`` says which hop this is
        (``client`` / ``relay`` / ``dispatch``).  They are emitted only
        when a trace context was actually attached, so untraced spans
        keep the exact PR 6 shape.
        """
        if not self.enabled:
            return
        if trace is not None:
            self.emit({
                "id": request_id,
                "op": op,
                "tenant": tenant,
                "resource": resource,
                "t_enq": t_enq,
                "t_disp": t_disp,
                "t_reply": t_reply,
                "trace": trace,
                "span_id": span_id,
                "parent": parent,
                "kind": kind,
            })
            return
        # Untraced fast path: the shape is fixed, the string fields
        # repeat from a tiny set, and ``repr`` of an int/float is its
        # JSON rendering — so build the line directly (keys in the same
        # sorted order the encoder would emit) instead of paying a dict
        # build plus a full JSON encode per dispatched request.  The id
        # is an int on every client op; only ticks leave it unset.
        self._buffer.append(
            f'{{"id":{"null" if request_id is None else request_id},'
            f'"op":{_quoted(op)},'
            f'"resource":{_quoted(resource)},"t_disp":{t_disp!r},'
            f'"t_enq":{t_enq!r},"t_reply":{t_reply!r},'
            f'"tenant":{_quoted(tenant)}}}'
        )
        self.emitted += 1
        if len(self._buffer) >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        if not self.enabled or not self._buffer:
            return
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(self._buffer) + "\n")
        self._buffer.clear()

    def live_spans(self) -> list[dict]:
        """Every span this sink's file holds right now, parsed.

        Flushes the in-process buffer first, then reads the file back —
        so the result covers spans emitted moments ago *and* spans a
        previous incarnation of this process wrote before a crash (the
        file is opened append-mode at construction).  The read side of
        federated ``/trace/{id}``: a worker answers the router's
        ``spans`` verb with exactly this.  Empty when tracing is off.
        """
        if self.path is None:
            return []
        self.flush()
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                return [
                    json.loads(line)
                    for line in handle
                    if line.strip()
                ]
        except FileNotFoundError:
            return []

    def close(self) -> None:
        self.flush()
        self.enabled = False


#: Shared disabled sink for callers that want "maybe tracing" without a
#: None check on the hot path.
NULL_TRACE = TraceSink(None)
