"""Flag-gated structured tracing: one JSON object per op, one per line.

A :class:`TraceSink` is the ops-plane counterpart of the metrics
registry: where histograms aggregate, the sink keeps every span.  The
server's dispatch loop emits one span per queued op — request id,
tenant, resource, op kind, and the enqueue/dispatch/reply timestamps
from the sink's injectable monotonic clock — so a captured trace can be
replayed against the latency histograms (`t_reply - t_enq` per line is
exactly what ``serve_op_latency_seconds`` observed).

Tracing is off unless a path is configured (``--trace-jsonl`` on
``engine serve``); the disabled sink is a shared null object whose
``emit`` is a no-op, keeping the hot path allocation-free.  Spans never
feed verified reports: timestamps are wall-clock and the byte-identity
gates run with tracing both on and off.
"""

from __future__ import annotations

import json
import time


class TraceSink:
    """Append-only JSONL span writer with an injectable clock.

    Spans are buffered in-process and flushed on every ``flush()`` /
    ``close()`` and every ``flush_every`` emits, so a crashed process
    loses at most one buffer of spans while the hot path stays a list
    append plus a dict build.
    """

    __slots__ = ("path", "clock", "enabled", "emitted", "_buffer", "_flush_every")

    def __init__(self, path=None, *, clock=time.monotonic, flush_every: int = 256):
        self.path = path
        self.clock = clock
        self.enabled = path is not None
        self.emitted = 0
        self._buffer: list[str] = []
        self._flush_every = max(1, int(flush_every))
        if self.enabled:
            # Truncate eagerly so a run that emits nothing still leaves
            # an (empty) trace file rather than a stale one.
            with open(self.path, "w", encoding="utf-8"):
                pass

    def emit(self, span: dict) -> None:
        """Record one span (a flat JSON-serialisable dict)."""
        if not self.enabled:
            return
        self._buffer.append(json.dumps(span, sort_keys=True, separators=(",", ":")))
        self.emitted += 1
        if len(self._buffer) >= self._flush_every:
            self.flush()

    def span(self, *, op: str, tenant, resource, request_id: int,
             t_enq: float, t_disp: float, t_reply: float,
             trace: str | None = None, span_id: str | None = None,
             parent: str | None = None, kind: str | None = None) -> None:
        """Emit the standard dispatch-loop span shape.

        The four optional fields carry the distributed trace context:
        ``trace`` is the 16-hex trace id shared by every hop of one op,
        ``span_id`` names this hop, ``parent`` names the hop that caused
        it (``None`` at the root), and ``kind`` says which hop this is
        (``client`` / ``relay`` / ``dispatch``).  They are emitted only
        when a trace context was actually attached, so untraced spans
        keep the exact PR 6 shape.
        """
        if not self.enabled:
            return
        record = {
            "id": request_id,
            "op": op,
            "tenant": tenant,
            "resource": resource,
            "t_enq": t_enq,
            "t_disp": t_disp,
            "t_reply": t_reply,
        }
        if trace is not None:
            record["trace"] = trace
            record["span_id"] = span_id
            record["parent"] = parent
            record["kind"] = kind
        self.emit(record)

    def flush(self) -> None:
        if not self.enabled or not self._buffer:
            return
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(self._buffer) + "\n")
        self._buffer.clear()

    def close(self) -> None:
        self.flush()
        self.enabled = False


#: Shared disabled sink for callers that want "maybe tracing" without a
#: None check on the hot path.
NULL_TRACE = TraceSink(None)
