"""Sampling stack profiler: where is the event loop actually spending time.

A :class:`SamplingProfiler` runs one daemon thread that wakes ``hz``
times a second, grabs every other thread's current frame via
``sys._current_frames()``, collapses each stack into the standard
semicolon-joined flamegraph form (outermost frame first), and appends
the collapsed strings to a bounded ring — so a capture is at most
``capacity`` samples however long it runs, and :meth:`snapshot`
aggregates the ring into ``{collapsed_stack: count}``.

Zero cost when off: construction allocates a deque and nothing else; no
thread exists until :meth:`start`, and :meth:`stop` joins it.  The
profiler observes wall-clock scheduling only — it never touches broker
state, so the byte-identity contract is untouched by profiling a live
server (gated by the ``p08_flight`` bench).

Exposed as ``GET /profile?seconds=`` on the admin planes (capture for N
seconds, return the aggregated stacks) and rendered offline by
``engine flamegraph``, which emits ``stack count`` lines any flamegraph
tool ingests.
"""

from __future__ import annotations

import sys
import threading
from collections import Counter, deque
from pathlib import PurePath

from ..errors import ModelError

#: Default sampling frequency.  Deliberately off the 100 Hz beat most
#: periodic work runs at, so the sampler does not alias against it.
DEFAULT_PROFILE_HZ = 97
#: Default ring size: ~40s of one busy thread at the default rate.
DEFAULT_PROFILE_CAPACITY = 4096

#: Stdlib threading internals that appear above every sampled frame of a
#: worker thread started through threading.Thread — noise, dropped.
_BOOTSTRAP = frozenset(("_bootstrap", "_bootstrap_inner"))


#: Code object -> rendered ``file:func`` label.  Code objects are
#: immutable and long-lived (one per function definition), so the cache
#: saves a PurePath build per frame per sample on the hot sampling path.
_FRAME_LABELS: dict = {}


def _frame_label(code) -> str:
    label = _FRAME_LABELS.get(code)
    if label is None:
        label = f"{PurePath(code.co_filename).stem}:{code.co_name}"
        _FRAME_LABELS[code] = label
    return label


def collapse_frame(frame) -> str:
    """One thread's stack as ``file:func;file:func;...``, root first."""
    parts: list[str] = []
    while frame is not None:
        code = frame.f_code
        if code.co_name not in _BOOTSTRAP:
            parts.append(_frame_label(code))
        frame = frame.f_back
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Thread-based statistical profiler over ``sys._current_frames``."""

    def __init__(
        self,
        hz: float = DEFAULT_PROFILE_HZ,
        capacity: int = DEFAULT_PROFILE_CAPACITY,
    ):
        if hz <= 0:
            raise ModelError("profiler hz must be > 0")
        if capacity < 1:
            raise ModelError("profiler capacity must be >= 1")
        self.hz = float(hz)
        self.capacity = int(capacity)
        self.samples = 0
        self._ring: deque[str] = deque(maxlen=self.capacity)
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> None:
        """Begin sampling; a no-op when already running."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling and join the sampler thread; idempotent."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join()
        self._thread = None

    def _run(self) -> None:
        me = threading.get_ident()
        interval = 1.0 / self.hz
        # Event.wait is the clock here: each timeout is one sampling
        # period, and a set() from stop() ends the run immediately.
        while not self._stop.wait(interval):
            frames = sys._current_frames()
            for ident, frame in frames.items():
                if ident == me:
                    continue
                self._ring.append(collapse_frame(frame))
                self.samples += 1

    def snapshot(self) -> dict:
        """The ring aggregated: ``{"stacks": {collapsed: count}, ...}``.

        ``samples`` counts everything ever sampled; ``retained`` is what
        the bounded ring still holds (== samples until it wraps).
        Callable while running — the ring is append-only from the
        sampler side, and ``Counter`` over a snapshot list is safe.
        """
        stacks = Counter(list(self._ring))
        return {
            "hz": self.hz,
            "capacity": self.capacity,
            "samples": self.samples,
            "retained": sum(stacks.values()),
            "running": self.running,
            "stacks": dict(
                sorted(stacks.items(), key=lambda kv: (-kv[1], kv[0]))
            ),
        }

    def clear(self) -> None:
        """Drop all retained samples (a fresh capture window)."""
        self._ring.clear()
        self.samples = 0


def render_collapsed(capture: dict) -> str:
    """``stack count`` lines from a :meth:`SamplingProfiler.snapshot`.

    The Brendan Gregg collapsed-stack format — pipe it into any
    flamegraph renderer, or read it directly: one line per distinct
    stack, heaviest first.
    """
    stacks = capture.get("stacks") or {}
    ordered = sorted(stacks.items(), key=lambda kv: (-kv[1], kv[0]))
    return "\n".join(
        f"{stack} {count}" for stack, count in ordered
    ) + ("\n" if ordered else "")
