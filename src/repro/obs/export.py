"""Scrape-time exporters: fold serving state into a metrics registry.

The ``metrics`` protocol verb is a *scrape*, not a stream: the server
(or the cluster router, for every worker it fronts) broadcasts the
internal ``stats`` barrier op, then folds the returned per-shard
payloads into a fresh registry with these exporters before rendering.
Broker counters therefore cost nothing on the hot path — they are read
once per scrape from the counters the broker already keeps — while the
continuously sampled families (latency histograms, byte counters) render
from the server's live registry and are simply concatenated after.

Both the server's and the router's ``metrics`` verb go through the same
two functions, so a clustered exposition shows the identical broker
families a single server would — just with a ``worker`` label in front
of the ``shard`` label.
"""

from __future__ import annotations

from .metrics import MetricsRegistry

_SHARD_GAUGES = (
    # (payload key, metric name, help)
    ("clock", "broker_clock_days", "Shard broker clock (simulated day)."),
    (
        "num_active",
        "broker_active_grants",
        "Grants currently live on the shard broker.",
    ),
    (
        "grant_table",
        "broker_grant_table_size",
        "Entries in the shard broker's grant table.",
    ),
    (
        "expiry_heap",
        "broker_expiry_heap_size",
        "Entries in the shard broker's expiry heap (including stale).",
    ),
    (
        "queue_depth",
        "serve_queue_depth",
        "Requests waiting in the shard's dispatch queue at scrape time.",
    ),
)


def export_shards(
    registry: MetricsRegistry, shards: list, **labels
) -> None:
    """Fold per-shard ``stats`` payloads into ``registry``.

    ``shards`` is the list the ``stats`` broadcast returns; every broker
    counter in the payload's ``stats_full`` dict becomes a
    ``broker_<name>_total`` counter and the structural levels become
    gauges, each labeled ``shard="<index>"`` plus any extra ``labels``
    (the router adds ``worker="<index>"``).
    """
    for shard in shards:
        shard_labels = dict(labels)
        shard_labels["shard"] = str(shard["index"])
        full = shard.get("stats_full") or shard.get("stats") or {}
        for key in sorted(full):
            registry.counter(
                f"broker_{key}_total",
                help=f"Broker lifetime {key.replace('_', ' ')} count.",
                **shard_labels,
            ).inc(full[key])
        for payload_key, metric, help_text in _SHARD_GAUGES:
            if payload_key in shard:
                registry.gauge(metric, help=help_text, **shard_labels).set(
                    shard[payload_key]
                )


def export_sessions(
    registry: MetricsRegistry, snapshot: dict, **labels
) -> None:
    """Fold a :meth:`SessionRegistry.snapshot` into ``registry``."""
    gauge = registry.gauge
    counter = registry.counter
    gauge(
        "serve_session_tenants",
        help="Live tenant sessions.",
        **labels,
    ).set(snapshot["tenants"])
    gauge(
        "serve_session_inflight",
        help="Mutation requests currently in flight across all tenants.",
        **labels,
    ).set(snapshot["inflight"])
    gauge(
        "serve_session_window",
        help="Per-tenant in-flight window bound.",
        **labels,
    ).set(snapshot["window"])
    counter(
        "serve_session_served_total",
        help="Mutation requests answered across all live sessions.",
        **labels,
    ).inc(snapshot["served"])
    counter(
        "serve_session_rejected_total",
        help="Requests refused with backpressure across live sessions.",
        **labels,
    ).inc(snapshot["rejected"])
    counter(
        "serve_session_expired_total",
        help="Idle tenant sessions reaped since server start.",
        **labels,
    ).inc(snapshot["expired_total"])
