"""Metrics core: counters, gauges, fixed-bucket histograms, a registry.

Three instrument types cover the serving layers' needs:

* :class:`Counter` — a monotonically increasing count (events applied,
  bytes moved, refusals issued);
* :class:`Gauge` — a point-in-time level (queue depth, live grants,
  in-flight ops on a worker link);
* :class:`Histogram` — observations bucketed against a *fixed* ladder of
  upper bounds (per-op latency).  Buckets are fixed at construction so
  ``observe`` is one bisect plus two adds — no allocation, no rebalance
  — and renders in Prometheus cumulative-``le`` form with the implicit
  ``+Inf`` bucket, ``_sum``, and ``_count`` series.

A :class:`MetricsRegistry` names instruments and their label sets:
``registry.counter("serve_bytes_in_total", conn="tcp")`` returns *the*
counter for that (name, labels) pair, creating it on first sight — so
instrumented code caches handles once and the hot path is a bare method
call.  Rendering (:meth:`MetricsRegistry.render_prometheus`) emits the
Prometheus text exposition format, which :mod:`repro.obs.promparse`
parses back; :meth:`MetricsRegistry.snapshot` is the JSON form.

**Determinism contract.**  Nothing here reads a clock behind the
caller's back: the registry *carries* an injectable monotonic clock
(``registry.clock``) purely as the agreed sampling source for whoever
instruments with it.  A registry constructed with ``enabled=False``
hands out the shared null instruments (:data:`NULL_COUNTER` and
friends) — module singletons whose methods do nothing — so disabled
instrumentation allocates nothing per call and leaves no trace in the
rendered output.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Callable

from ..errors import ModelError

#: Default latency ladder (seconds): 100µs .. 10s, roughly 2.5x steps.
#: Matches the serving layers' observed per-op dispatch times — the
#: bottom buckets resolve the unix-socket fast path, the top ones catch
#: barrier ops and stalls.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (>= 0) to the count."""
        self.value += amount


class Gauge:
    """A level that can move both ways."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount


class Histogram:
    """Observations against a fixed ladder of inclusive upper bounds.

    ``bounds`` are the finite ``le`` bucket edges, strictly increasing;
    the ``+Inf`` bucket is implicit.  ``counts[i]`` is the number of
    observations in bucket ``i`` alone (*not* cumulative — rendering
    accumulates), ``counts[-1]`` the overflow past the last bound.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ModelError(
                "histogram bounds must be non-empty and strictly increasing"
            )
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation (``le`` bounds are inclusive)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Per-bucket cumulative counts, one entry per finite bound + Inf."""
        out = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile by linear interpolation within buckets.

        The standard histogram-quantile estimate: find the bucket the
        rank lands in and interpolate between its edges.  Observations
        past the last finite bound clamp to that bound (the same
        convention Prometheus' ``histogram_quantile`` uses); an empty
        histogram returns 0.0.
        """
        if not 0.0 <= q <= 1.0:
            raise ModelError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        for index, bucket_count in enumerate(self.counts):
            previous = running
            running += bucket_count
            if running >= rank and bucket_count:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                lo = 0.0 if index == 0 else self.bounds[index - 1]
                hi = self.bounds[index]
                return lo + (hi - lo) * ((rank - previous) / bucket_count)
        return self.bounds[-1]


class _NullCounter(Counter):
    """The disabled path's counter: same surface, does nothing."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: int | float) -> None:
        pass

    def inc(self, amount: int | float = 1) -> None:
        pass

    def dec(self, amount: int | float = 1) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def __init__(self) -> None:
        super().__init__((1.0,))

    def observe(self, value: float) -> None:
        pass


#: Shared no-op instruments a disabled registry hands out — module
#: singletons, so the disabled path never allocates.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()

_TYPES = ("counter", "gauge", "histogram")


class _Family:
    """One metric name: its type, help text, and per-label-set series."""

    __slots__ = ("name", "type", "help", "bounds", "series")

    def __init__(self, name: str, kind: str, help_text: str, bounds):
        self.name = name
        self.type = kind
        self.help = help_text
        self.bounds = bounds
        #: label tuple (sorted (key, value) pairs) -> instrument
        self.series: dict[tuple, Counter | Gauge | Histogram] = {}


def _valid_name(name: str) -> bool:
    if not name or not (name[0].isalpha() or name[0] == "_"):
        return False
    return all(c.isalnum() or c in "_:" for c in name)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: int | float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int) or (
        isinstance(value, float) and value.is_integer()
    ):
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return _format_value(bound)


def _render_labels(labels: tuple, extra: tuple = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(str(value))}"' for key, value in pairs
    )
    return "{" + body + "}"


class MetricsRegistry:
    """Named, labeled instruments plus rendering, behind one enable flag.

    Args:
        enabled: when ``False`` every factory returns the shared null
            instrument and :meth:`render_prometheus` renders nothing —
            the allocation-free disabled path.
        clock: the monotonic-seconds source instrumented code should
            sample with (injectable so tests and replays stay
            deterministic); the registry itself never calls it.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.enabled = enabled
        self.clock = clock
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # Instrument factories
    # ------------------------------------------------------------------
    def _family(
        self, name: str, kind: str, help_text: str, bounds=None
    ) -> _Family:
        if not _valid_name(name):
            raise ModelError(f"invalid metric name {name!r}")
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, bounds)
            self._families[name] = family
        elif family.type != kind:
            raise ModelError(
                f"metric {name!r} is a {family.type}, not a {kind}"
            )
        elif kind == "histogram" and family.bounds != bounds:
            raise ModelError(
                f"histogram {name!r} re-registered with different buckets"
            )
        return family

    @staticmethod
    def _label_key(labels: dict) -> tuple:
        for key in labels:
            if not _valid_name(key) or key == "le":
                raise ModelError(f"invalid label name {key!r}")
        return tuple(sorted((k, str(v)) for k, v in labels.items()))

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """The counter for (name, labels), created on first sight."""
        if not self.enabled:
            return NULL_COUNTER
        family = self._family(name, "counter", help)
        key = self._label_key(labels)
        series = family.series.get(key)
        if series is None:
            series = family.series[key] = Counter()
        return series

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """The gauge for (name, labels), created on first sight."""
        if not self.enabled:
            return NULL_GAUGE
        family = self._family(name, "gauge", help)
        key = self._label_key(labels)
        series = family.series.get(key)
        if series is None:
            series = family.series[key] = Gauge()
        return series

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels,
    ) -> Histogram:
        """The histogram for (name, labels), created on first sight."""
        if not self.enabled:
            return NULL_HISTOGRAM
        bounds = tuple(float(b) for b in buckets)
        family = self._family(name, "histogram", help, bounds)
        key = self._label_key(labels)
        series = family.series.get(key)
        if series is None:
            series = family.series[key] = Histogram(bounds)
        return series

    # ------------------------------------------------------------------
    # Introspection and rendering
    # ------------------------------------------------------------------
    def names(self) -> tuple[str, ...]:
        """Registered family names, sorted."""
        return tuple(sorted(self._families))

    def render_prometheus(self) -> str:
        """The whole registry in Prometheus text exposition format.

        Families render in name order, series in label order, so the
        output is a deterministic function of the registry state — the
        property the round-trip tests rely on.
        """
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.type}")
            for key in sorted(family.series):
                series = family.series[key]
                if family.type == "histogram":
                    cumulative = series.cumulative()
                    for bound, running in zip(series.bounds, cumulative):
                        le = (("le", _format_bound(bound)),)
                        lines.append(
                            f"{name}_bucket{_render_labels(key, le)} "
                            f"{running}"
                        )
                    lines.append(
                        f'{name}_bucket{_render_labels(key, (("le", "+Inf"),))} '
                        f"{cumulative[-1]}"
                    )
                    lines.append(
                        f"{name}_sum{_render_labels(key)} "
                        f"{_format_value(series.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(key)} {series.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_render_labels(key)} "
                        f"{_format_value(series.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict:
        """JSON-ready registry state (the exposition's structured twin)."""
        out: dict = {}
        for name in sorted(self._families):
            family = self._families[name]
            series_out = []
            for key in sorted(family.series):
                series = family.series[key]
                entry: dict = {"labels": dict(key)}
                if family.type == "histogram":
                    entry["buckets"] = {
                        _format_bound(bound): running
                        for bound, running in zip(
                            series.bounds, series.cumulative()
                        )
                    }
                    entry["buckets"]["+Inf"] = series.count
                    entry["sum"] = series.sum
                    entry["count"] = series.count
                else:
                    entry["value"] = series.value
                series_out.append(entry)
            out[name] = {
                "type": family.type,
                "help": family.help,
                "series": series_out,
            }
        return out


def latency_summary(
    registry: MetricsRegistry, name: str
) -> dict[str, dict[str, float]]:
    """Per-series p50/p95/p99 summaries of one histogram family.

    Keyed by the series' label values joined with ``,`` (most callers
    use a single label such as ``tenant``, so the key reads as the
    tenant name).  Used by ``loadgen --check`` to print per-tenant
    op-latency percentiles from the client-side histograms.
    """
    family = registry._families.get(name)
    if family is None or family.type != "histogram":
        return {}
    out: dict[str, dict[str, float]] = {}
    for key in sorted(family.series):
        series = family.series[key]
        label = ",".join(value for _, value in key) or "(all)"
        out[label] = {
            "count": series.count,
            "p50": series.quantile(0.50),
            "p95": series.quantile(0.95),
            "p99": series.quantile(0.99),
        }
    return out
