"""The online facility leasing algorithm of thesis Section 4.3.

Per time step ``t`` the algorithm runs two phases, following Jain-Vazirani
style primal-dual with the dual-fitting analysis of Section 4.4:

**Phase 1 (bidding).**  Every client that has ever arrived keeps one
potential ``alpha_{jk}`` per lease type ``k``, reset to zero each step and
raised continuously at a common unit rate.  A potential bids
``(alpha_{jk} - d_{ij})^+`` towards each facility ``(i, k)``; facility
``(i, k)`` is *temporarily opened* the moment its bids reach its cost
``c_{ik}`` (invariant INV1).  A potential freezes as soon as it reaches an
open facility of its type (``alpha_{jk} >= d_{ij}``) or — for clients from
earlier steps — its recorded value ``alpha_hat_j`` (invariant INV2).  A
*new* client connects (provisionally) at its first freeze and records
``alpha_hat_j``; that caps all its potentials at once since they grow in
lockstep.

**Phase 2 (conflict resolution).**  Per lease type, a conflict graph is
built on temporarily+permanently open facilities — an edge when one
client bids positively towards both endpoints — and a maximal independent
set (preferring already-permanent facilities) is permanently opened
(leased).  New clients whose phase-1 facility lost out are reconnected to
a neighbouring MIS facility; Proposition 4.2 bounds the detour by
``3 alpha_hat_j`` through the triangle inequality.

Theorem 4.5: the algorithm is ``(3 + K) H_{l_max}``-competitive in the
interval model, hence ``4 (3 + K) H_{l_max}`` in general.
"""

from __future__ import annotations

from ..core.cost import CostLedger
from ..core.lease import Lease
from ..core.store import LeaseStore
from .model import ClientBatch, Connection, FacilityLeasingInstance

_EPS = 1e-9


class OnlineFacilityLeasing:
    """Two-phase primal-dual online algorithm for facility leasing.

    Args:
        instance: supplies geometry, costs and the schedule; batches are
            fed through :meth:`on_demand` (one :class:`ClientBatch` per
            time step, in arrival order).
    """

    def __init__(self, instance: FacilityLeasingInstance):
        self.instance = instance
        self.schedule = instance.schedule
        self.store = LeaseStore()
        self.ledger = CostLedger()
        self.alpha_hat: dict[int, float] = {}
        self.connections: list[Connection] = []
        self._arrived: list[int] = []

    # ------------------------------------------------------------------
    # Online interface
    # ------------------------------------------------------------------
    def on_demand(self, batch: ClientBatch) -> None:
        """Process one time step's client batch (may be empty)."""
        t = batch.arrival
        new_ids = [client.ident for client in batch.clients]
        self._arrived.extend(new_ids)
        if not self._arrived:
            return

        alpha, provisional, open_by_type = self._phase_one(t, set(new_ids))
        self._phase_two(t, alpha, provisional, open_by_type, new_ids)

    # ------------------------------------------------------------------
    # Phase 1: continuous bidding, simulated event by event
    # ------------------------------------------------------------------
    def _phase_one(self, t: int, new_ids: set[int]):
        instance = self.instance
        num_types = self.schedule.num_types
        clients = self._arrived

        window_start = {
            k: self.schedule[k].aligned_start(t) for k in range(num_types)
        }
        perm_open = {
            (i, k)
            for k in range(num_types)
            for i in range(instance.num_facilities)
            if self.store.owns(i, k, window_start[k])
        }

        # Potential state: all (j, k) start active at value tau.
        active: set[tuple[int, int]] = {
            (j, k) for j in clients for k in range(num_types)
        }
        alpha: dict[tuple[int, int], float] = {}
        cap = {
            j: self.alpha_hat.get(j, float("inf")) for j in clients
        }
        open_by_type: dict[int, set[int]] = {
            k: {i for (i, kk) in perm_open if kk == k}
            for k in range(num_types)
        }
        # Facilities not yet open accumulate bids; frozen bids are fixed.
        frozen_bid: dict[tuple[int, int], float] = {}
        provisional: dict[int, tuple[int, int]] = {}
        tau = 0.0

        def freeze(j: int, k: int, value: float) -> None:
            active.discard((j, k))
            alpha[(j, k)] = value
            for i in range(instance.num_facilities):
                if i in open_by_type[k]:
                    continue
                bid = value - instance.distance(i, j)
                if bid > 0:
                    frozen_bid[(i, k)] = frozen_bid.get((i, k), 0.0) + bid

        def open_facility(i: int, k: int) -> None:
            open_by_type[k].add(i)
            # Potentials that already cover the distance freeze now.
            for j in clients:
                if (j, k) in active and instance.distance(i, j) <= tau + _EPS:
                    self._settle(
                        j, k, i, tau, new_ids, cap, provisional, freeze,
                        active, num_types,
                    )

        def tight_time(i: int, k: int) -> float:
            """Earliest tau' >= tau at which facility (i, k) goes tight.

            The bid load ``base + sum_active (tau' - d_ij)^+`` is piecewise
            linear in ``tau'`` with slope increasing by one at every active
            client's distance; walk the breakpoints.
            """
            cost = instance.lease_costs[i][k]
            distances = sorted(
                instance.distance(i, j)
                for j in clients
                if (j, k) in active
            )
            load = frozen_bid.get((i, k), 0.0) + sum(
                tau - d for d in distances if d < tau
            )
            if load >= cost - _EPS:
                return tau
            slope = sum(1 for d in distances if d < tau)
            previous = tau
            for d in distances:
                if d <= tau:
                    continue
                if slope > 0:
                    candidate = previous + (cost - load) / slope
                    if candidate <= d + _EPS:
                        return candidate
                load += slope * (d - previous)
                previous = d
                slope += 1
            if slope == 0:
                return float("inf")
            return previous + (cost - load) / slope

        while active:
            # Next freeze-by-open-facility or freeze-by-cap event.
            best_time = float("inf")
            best_event = None  # ("freeze", j, k, i) or ("cap", j, k) or ("open", i, k)
            for (j, k) in active:
                if cap[j] < best_time:
                    best_time = cap[j]
                    best_event = ("cap", j, k, None)
                for i in open_by_type[k]:
                    when = max(tau, instance.distance(i, j))
                    if when < best_time - _EPS:
                        best_time = when
                        best_event = ("freeze", j, k, i)
            for i in range(instance.num_facilities):
                for k in range(num_types):
                    if i in open_by_type[k]:
                        continue
                    if not any((j, k) in active for j in clients):
                        continue
                    when = tight_time(i, k)
                    if when < best_time - _EPS:
                        best_time = when
                        best_event = ("open", i, k, None)
            if best_event is None:  # pragma: no cover - defensive
                break
            tau = max(tau, best_time)
            kind, a, b, c = best_event
            if kind == "open":
                open_facility(a, b)
            elif kind == "cap":
                freeze(a, b, min(tau, cap[a]))
            else:  # freeze by open facility
                self._settle(
                    a, b, c, tau, new_ids, cap, provisional, freeze,
                    active, num_types,
                )

        return alpha, provisional, open_by_type

    def _settle(
        self, j, k, i, tau, new_ids, cap, provisional, freeze, active,
        num_types,
    ) -> None:
        """Freeze (j, k) against open facility i; connect j if it is new."""
        freeze(j, k, tau)
        if j in new_ids and j not in provisional:
            provisional[j] = (i, k)
            self.alpha_hat[j] = tau
            cap[j] = tau
            # All potentials of j sit at tau (lockstep growth), so INV2
            # freezes every other type immediately.
            for other in range(num_types):
                if (j, other) in active:
                    freeze(j, other, tau)

    # ------------------------------------------------------------------
    # Phase 2: conflict graphs, MIS, permanent opening, reconnection
    # ------------------------------------------------------------------
    def _phase_two(self, t, alpha, provisional, open_by_type, new_ids):
        instance = self.instance
        num_types = self.schedule.num_types
        clients = self._arrived

        mis_by_type: dict[int, set[int]] = {}
        neighbours: dict[tuple[int, int], set[int]] = {}
        for k in range(num_types):
            nodes = sorted(open_by_type[k])
            window = self.schedule[k].aligned_start(t)
            edges: dict[int, set[int]] = {i: set() for i in nodes}
            for index, i in enumerate(nodes):
                for i2 in nodes[index + 1:]:
                    if self._in_conflict(i, i2, k, alpha, clients):
                        edges[i].add(i2)
                        edges[i2].add(i)
            # Maximal independent set, preferring facilities we already pay
            # for (permanently open), then cheaper ones.
            order = sorted(
                nodes,
                key=lambda i: (
                    not self.store.owns(i, k, window),
                    instance.lease_costs[i][k],
                ),
            )
            mis: set[int] = set()
            for i in order:
                if not edges[i] & mis:
                    mis.add(i)
            mis_by_type[k] = mis
            for i in nodes:
                neighbours[(i, k)] = edges[i]
            for i in mis:
                lease = instance.facility_lease(i, k, t)
                if self.store.buy(lease):
                    self.ledger.add(t, "leasing", lease.cost, f"facility {i}")

        for j in new_ids:
            i, k = provisional[j]
            if i in mis_by_type[k]:
                target = i
            else:
                candidates = neighbours[(i, k)] & mis_by_type[k]
                # MIS maximality guarantees an open neighbour exists.
                target = min(
                    candidates, key=lambda i2: instance.distance(i2, j)
                )
            distance = instance.distance(target, j)
            self.connections.append(
                Connection(client=j, facility=target, distance=distance)
            )
            self.ledger.add(t, "connection", distance, f"client {j}")

    def _in_conflict(self, i, i2, k, alpha, clients) -> bool:
        """Whether some client bids positively towards both facilities."""
        instance = self.instance
        for j in clients:
            value = alpha.get((j, k))
            if value is None:
                continue
            if value > max(
                instance.distance(i, j), instance.distance(i2, j)
            ) + _EPS:
                return True
        return False

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def leasing_cost(self) -> float:
        """Total facility leasing cost so far."""
        return self.store.total_cost

    @property
    def connection_cost(self) -> float:
        """Total client connection cost so far."""
        return sum(connection.distance for connection in self.connections)

    @property
    def cost(self) -> float:
        """Full objective: leasing plus connection."""
        return self.leasing_cost + self.connection_cost

    @property
    def leases(self) -> tuple[Lease, ...]:
        """Permanently opened facility leases in purchase order."""
        return self.store.leases


def run_facility_leasing(
    instance: FacilityLeasingInstance,
) -> OnlineFacilityLeasing:
    """Feed all of the instance's batches through the online algorithm."""
    algorithm = OnlineFacilityLeasing(instance)
    for batch in instance.batches():
        algorithm.on_demand(batch)
    return algorithm
