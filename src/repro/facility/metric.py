"""Metric-space substrate for facility leasing (thesis Section 4.2).

Clients and facilities live in a metric space; connection costs are
distances and must satisfy the triangle inequality — the property both
Proposition 4.2 and Proposition 4.3 lean on.  Two concrete metrics are
provided: Euclidean points in the plane (the generators' default) and an
explicit distance matrix (for adversarial/tests instances), plus a
triangle-inequality checker used by validation and property tests.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from .._validation import require, require_positive_int

Point = tuple[float, float]


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two points in the plane."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def random_points(
    count: int, rng: random.Random, box: float = 100.0
) -> list[Point]:
    """``count`` uniform points in the ``box x box`` square."""
    require_positive_int(count, "count")
    return [(rng.random() * box, rng.random() * box) for _ in range(count)]


def clustered_points(
    count: int,
    num_clusters: int,
    rng: random.Random,
    box: float = 100.0,
    spread: float = 4.0,
) -> list[Point]:
    """Points in Gaussian-ish clusters — the regime facility location likes.

    Clients clustered near few centres make facility opening decisions
    non-trivial: one facility per cluster is near-optimal offline, but an
    online algorithm cannot know which clusters materialise.
    """
    require_positive_int(count, "count")
    require_positive_int(num_clusters, "num_clusters")
    centres = random_points(num_clusters, rng, box)
    points: list[Point] = []
    for _ in range(count):
        cx, cy = centres[rng.randrange(num_clusters)]
        points.append(
            (
                cx + (rng.random() - 0.5) * 2 * spread,
                cy + (rng.random() - 0.5) * 2 * spread,
            )
        )
    return points


class DistanceMatrix:
    """An explicit finite metric over ``size`` points.

    Args:
        entries: square, symmetric, zero-diagonal matrix of non-negative
            distances.  Triangle inequality is validated up-front so that
            algorithm guarantees relying on it are meaningful.
    """

    def __init__(self, entries: Sequence[Sequence[float]]):
        size = len(entries)
        require(size > 0, "distance matrix must be non-empty")
        for row_index, row in enumerate(entries):
            require(
                len(row) == size,
                f"row {row_index} has {len(row)} entries, expected {size}",
            )
        matrix = [[float(v) for v in row] for row in entries]
        for i in range(size):
            require(matrix[i][i] == 0.0, f"diagonal entry ({i},{i}) not zero")
            for j in range(size):
                require(matrix[i][j] >= 0.0, "distances must be >= 0")
                require(
                    abs(matrix[i][j] - matrix[j][i]) < 1e-9,
                    f"matrix not symmetric at ({i},{j})",
                )
        violation = triangle_violation(matrix)
        require(
            violation <= 1e-9,
            f"triangle inequality violated by {violation}",
        )
        self.entries = matrix
        self.size = size

    def distance(self, i: int, j: int) -> float:
        """Distance between points ``i`` and ``j``."""
        return self.entries[i][j]


def triangle_violation(matrix: Sequence[Sequence[float]]) -> float:
    """Largest amount by which ``d(i,k) > d(i,j) + d(j,k)`` anywhere (0 if metric)."""
    size = len(matrix)
    worst = 0.0
    for i in range(size):
        for j in range(size):
            for k in range(size):
                worst = max(
                    worst, matrix[i][k] - (matrix[i][j] + matrix[j][k])
                )
    return worst
