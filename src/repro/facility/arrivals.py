"""Arrival patterns and the ``H_q`` series of thesis Theorem 4.5.

The competitive factor ``4 (3 + K) H_{l_max}`` depends on the client
arrival pattern only through

    ``H_q = sum_{i=1}^{q} |D_i| / (|D_1| + ... + |D_i|)``.

Corollary 4.7 singles out the 'natural' patterns with ``H_q = O(log q)``
(constant, non-increasing, polynomially bounded batches); Section 4.4
conjectures exponential growth ``|D_i| = 2^i`` — where ``H_q = Theta(q)``
— is genuinely hard.  This module computes the series, builds instances
from batch-size patterns, and evaluates the theoretical bound so the E9
benchmark can put measured ratios next to it.
"""

from __future__ import annotations

import random

from .._validation import require
from ..core.lease import LeaseSchedule
from .metric import clustered_points, random_points
from .model import Client, FacilityLeasingInstance


def harmonic_series(batch_sizes: list[int]) -> float:
    """``H_q`` for the given ``|D_i|`` sequence (empty batches contribute 0)."""
    total = 0
    value = 0.0
    for size in batch_sizes:
        total += size
        if total > 0 and size > 0:
            value += size / total
    return value


def theoretical_bound(schedule: LeaseSchedule, batch_sizes: list[int]) -> float:
    """The Theorem 4.5 bound ``4 (3 + K) H_{l_max}`` for this pattern.

    ``H`` is evaluated per round of length ``l_max`` and the maximum over
    rounds is used, matching the round decomposition of Section 4.4.
    """
    lmax = schedule.lmax
    worst = 0.0
    for round_start in range(0, max(1, len(batch_sizes)), lmax):
        chunk = batch_sizes[round_start:round_start + lmax]
        worst = max(worst, harmonic_series(chunk))
    return 4 * (3 + schedule.num_types) * worst


def make_instance(
    schedule: LeaseSchedule,
    num_facilities: int,
    batch_sizes: list[int],
    rng: random.Random,
    clustered: bool = True,
    facility_cost_scale: float = 20.0,
    box: float = 100.0,
) -> FacilityLeasingInstance:
    """Build a facility leasing instance from a batch-size pattern.

    Facility positions are uniform in the box; client positions are
    clustered (default) or uniform.  Facility lease costs follow the
    schedule's cost profile scaled per facility by a random base around
    ``facility_cost_scale`` — large enough relative to distances that the
    lease-vs-connect trade-off is non-trivial.
    """
    require(num_facilities > 0, "need at least one facility")
    require(len(batch_sizes) > 0, "need at least one time step")
    facility_points = random_points(num_facilities, rng, box)
    total_clients = sum(batch_sizes)
    require(total_clients > 0, "batch sizes sum to zero clients")
    if clustered:
        client_points = clustered_points(
            total_clients, max(2, num_facilities // 2), rng, box
        )
    else:
        client_points = random_points(total_clients, rng, box)

    clients: list[Client] = []
    ident = 0
    for t, size in enumerate(batch_sizes):
        for _ in range(size):
            clients.append(
                Client(ident=ident, point=client_points[ident], arrival=t)
            )
            ident += 1

    lease_costs = []
    for _ in range(num_facilities):
        base = facility_cost_scale * (0.5 + rng.random())
        lease_costs.append(
            tuple(
                base * lease_type.cost / schedule[0].cost
                for lease_type in schedule
            )
        )
    return FacilityLeasingInstance(
        facility_points=tuple(facility_points),
        lease_costs=tuple(lease_costs),
        schedule=schedule,
        clients=tuple(clients),
    )
