"""Facility leasing (thesis Chapter 4).

The first time-independent competitive algorithm for facility leasing:
clients arrive in batches and connect to leased facilities in a metric
space.  The package provides the metric substrate, the instance model and
Figure 4.1 ILP, the two-phase primal-dual online algorithm of Section 4.3
(``(3 + K) H_{l_max}``-competitive by Theorem 4.5), exact and heuristic
offline baselines, and the arrival patterns of Corollary 4.7.
"""

from .arrivals import harmonic_series, make_instance, theoretical_bound
from .metric import (
    DistanceMatrix,
    Point,
    clustered_points,
    euclidean,
    random_points,
    triangle_violation,
)
from .model import (
    Client,
    ClientBatch,
    Connection,
    FacilityLeasingInstance,
)
from .offline import (
    OfflineFacilitySolution,
    lp_lower_bound,
    nearest_heuristic,
    optimal_brute,
    optimal_ilp,
    optimum,
)
from .online import OnlineFacilityLeasing, run_facility_leasing

__all__ = [
    "Client",
    "ClientBatch",
    "Connection",
    "DistanceMatrix",
    "FacilityLeasingInstance",
    "OfflineFacilitySolution",
    "OnlineFacilityLeasing",
    "Point",
    "clustered_points",
    "euclidean",
    "harmonic_series",
    "lp_lower_bound",
    "make_instance",
    "nearest_heuristic",
    "optimal_brute",
    "optimal_ilp",
    "optimum",
    "random_points",
    "run_facility_leasing",
    "theoretical_bound",
    "triangle_violation",
]
