"""Facility leasing (thesis Chapter 4).

The first time-independent competitive algorithm for facility leasing.
The paper objects each type models, and the claim its benchmark
measures:

* :class:`FacilityLeasingInstance` / :class:`Client` /
  :class:`ClientBatch` — the Section 4.2 model: client batches arrive
  over time and each client connects to a facility holding a lease
  active at its arrival, paying metric connection cost plus leasing
  cost.  :class:`DistanceMatrix` and the point generators supply the
  metric substrate; :func:`optimal_ilp`/:func:`optimum` solve the
  Figure 4.1 MILP exactly.
* :class:`OnlineFacilityLeasing` (:func:`run_facility_leasing`) — the
  two-phase primal-dual algorithm of Section 4.3,
  ``(3 + K) H_{l_max}``-competitive by Theorem 4.5.  Benchmark E9
  (scenarios ``facility-e09-*``) measures that ratio against the exact
  MILP across the Corollary 4.7 arrival patterns
  (:func:`harmonic_series`, :func:`theoretical_bound`) — constant,
  non-increasing, polynomial, and the conjectured-hard exponential
  regime.

Every benchmark runs through the ``repro.engine`` scenario/replay
substrate (see ``repro.engine.paper``).
"""

from .arrivals import harmonic_series, make_instance, theoretical_bound
from .metric import (
    DistanceMatrix,
    Point,
    clustered_points,
    euclidean,
    random_points,
    triangle_violation,
)
from .model import (
    Client,
    ClientBatch,
    Connection,
    FacilityLeasingInstance,
)
from .offline import (
    OfflineFacilitySolution,
    lp_lower_bound,
    nearest_heuristic,
    optimal_brute,
    optimal_ilp,
    optimum,
)
from .online import OnlineFacilityLeasing, run_facility_leasing

__all__ = [
    "Client",
    "ClientBatch",
    "Connection",
    "DistanceMatrix",
    "FacilityLeasingInstance",
    "OfflineFacilitySolution",
    "OnlineFacilityLeasing",
    "Point",
    "clustered_points",
    "euclidean",
    "harmonic_series",
    "lp_lower_bound",
    "make_instance",
    "nearest_heuristic",
    "optimal_brute",
    "optimal_ilp",
    "optimum",
    "random_points",
    "run_facility_leasing",
    "theoretical_bound",
    "triangle_violation",
]
