"""Offline baselines for facility leasing (Figure 4.1 ILP).

The facility ILP is not a pure covering program (the linking rows
``y_{ij} <= sum x`` have mixed signs), so the exact path formulates the
mixed-integer program directly for scipy/HiGHS: facility-window variables
are integral, assignment variables stay continuous — given integral
windows, an optimal assignment puts full weight on the nearest open
facility, so the relaxation of ``y`` is free.

Without scipy, :func:`optimal_brute` enumerates window subsets for tiny
instances and :func:`nearest_heuristic` provides a feasible upper bound;
:func:`optimum` picks the best available method and reports brackets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core.lease import Lease
from ..core.results import OptBounds
from ..errors import SolverError
from .model import Connection, FacilityLeasingInstance

try:
    import numpy as _np
    from scipy import optimize as _opt
    from scipy import sparse as _sparse

    HAVE_SCIPY = True
except Exception:  # pragma: no cover - exercised only without scipy
    HAVE_SCIPY = False


@dataclass(frozen=True, slots=True)
class OfflineFacilitySolution:
    """An offline solution: cost plus the leases and connections realising it."""

    cost: float
    leases: tuple[Lease, ...]
    connections: tuple[Connection, ...]
    method: str


def _candidate_windows(instance: FacilityLeasingInstance) -> list[Lease]:
    """Aligned facility windows covering at least one arrival step."""
    arrival_steps = sorted({client.arrival for client in instance.clients})
    windows: dict[tuple[int, int, int], Lease] = {}
    for t in arrival_steps:
        for i in range(instance.num_facilities):
            for lease_type in instance.schedule:
                lease = instance.facility_lease(i, lease_type.index, t)
                windows[lease.key] = lease
    return list(windows.values())


def _best_assignment(
    instance: FacilityLeasingInstance, open_windows: list[Lease]
) -> tuple[float, list[Connection]] | None:
    """Cheapest feasible assignment given the opened windows, or None."""
    connections: list[Connection] = []
    total = 0.0
    for client in instance.clients:
        open_facilities = {
            lease.resource
            for lease in open_windows
            if lease.covers(client.arrival)
        }
        if not open_facilities:
            return None
        facility = min(
            open_facilities,
            key=lambda i: instance.distance(i, client.ident),
        )
        distance = instance.distance(facility, client.ident)
        connections.append(
            Connection(
                client=client.ident, facility=facility, distance=distance
            )
        )
        total += distance
    return total, connections


def optimal_ilp(instance: FacilityLeasingInstance) -> OfflineFacilitySolution:
    """Exact optimum via scipy/HiGHS mixed-integer programming."""
    if not HAVE_SCIPY:
        raise SolverError("scipy is required for the facility ILP")
    windows = _candidate_windows(instance)
    num_windows = len(windows)
    clients = instance.clients
    num_clients = len(clients)
    m = instance.num_facilities

    # Variable layout: [x_windows | y_{client, facility}].
    num_vars = num_windows + num_clients * m

    def y_index(client: int, facility: int) -> int:
        return num_windows + client * m + facility

    costs = _np.zeros(num_vars)
    for index, window in enumerate(windows):
        costs[index] = window.cost
    for client in clients:
        for facility in range(m):
            costs[y_index(client.ident, facility)] = instance.distance(
                facility, client.ident
            )

    rows, cols, data, lower = [], [], [], []
    row_count = 0
    # Coverage rows: sum_i y_ij >= 1.
    for client in clients:
        for facility in range(m):
            rows.append(row_count)
            cols.append(y_index(client.ident, facility))
            data.append(1.0)
        lower.append(1.0)
        row_count += 1
    # Linking rows: sum over i's windows covering t of x  -  y_ij >= 0.
    for client in clients:
        for facility in range(m):
            any_window = False
            for index, window in enumerate(windows):
                if window.resource == facility and window.covers(
                    client.arrival
                ):
                    rows.append(row_count)
                    cols.append(index)
                    data.append(1.0)
                    any_window = True
            if not any_window:
                continue
            rows.append(row_count)
            cols.append(y_index(client.ident, facility))
            data.append(-1.0)
            lower.append(0.0)
            row_count += 1

    matrix = _sparse.csr_matrix(
        (data, (rows, cols)), shape=(row_count, num_vars)
    )
    integrality = _np.zeros(num_vars)
    integrality[:num_windows] = 1
    result = _opt.milp(
        c=costs,
        constraints=_opt.LinearConstraint(
            matrix, lb=_np.asarray(lower), ub=_np.inf
        ),
        integrality=integrality,
        bounds=_opt.Bounds(lb=0.0, ub=1.0),
    )
    if not result.success:
        raise SolverError(f"facility ILP failed: {result.message}")
    open_windows = [
        window
        for index, window in enumerate(windows)
        if result.x[index] > 0.5
    ]
    assignment = _best_assignment(instance, open_windows)
    if assignment is None:  # pragma: no cover - ILP guarantees coverage
        raise SolverError("ILP solution left a client unserved")
    connection_cost, connections = assignment
    lease_cost = sum(window.cost for window in open_windows)
    return OfflineFacilitySolution(
        cost=lease_cost + connection_cost,
        leases=tuple(open_windows),
        connections=tuple(connections),
        method="scipy-milp",
    )


def lp_lower_bound(instance: FacilityLeasingInstance) -> float:
    """LP relaxation of the facility ILP — a valid lower bound on OPT."""
    if not HAVE_SCIPY:
        raise SolverError("scipy is required for the facility LP bound")
    solution = _relaxed(instance)
    return solution


def _relaxed(instance: FacilityLeasingInstance) -> float:
    windows = _candidate_windows(instance)
    num_windows = len(windows)
    clients = instance.clients
    m = instance.num_facilities
    num_vars = num_windows + len(clients) * m

    def y_index(client: int, facility: int) -> int:
        return num_windows + client * m + facility

    costs = _np.zeros(num_vars)
    for index, window in enumerate(windows):
        costs[index] = window.cost
    for client in clients:
        for facility in range(m):
            costs[y_index(client.ident, facility)] = instance.distance(
                facility, client.ident
            )
    rows, cols, data, lower = [], [], [], []
    row_count = 0
    for client in clients:
        for facility in range(m):
            rows.append(row_count)
            cols.append(y_index(client.ident, facility))
            data.append(1.0)
        lower.append(1.0)
        row_count += 1
    for client in clients:
        for facility in range(m):
            present = False
            for index, window in enumerate(windows):
                if window.resource == facility and window.covers(
                    client.arrival
                ):
                    rows.append(row_count)
                    cols.append(index)
                    data.append(1.0)
                    present = True
            if not present:
                continue
            rows.append(row_count)
            cols.append(y_index(client.ident, facility))
            data.append(-1.0)
            lower.append(0.0)
            row_count += 1
    matrix = _sparse.csr_matrix(
        (data, (rows, cols)), shape=(row_count, num_vars)
    )
    result = _opt.linprog(
        c=costs,
        A_ub=-matrix,
        b_ub=-_np.asarray(lower),
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not result.success:
        raise SolverError(f"facility LP failed: {result.message}")
    return float(result.fun)


def optimal_brute(
    instance: FacilityLeasingInstance, max_windows: int = 18
) -> OfflineFacilitySolution:
    """Exhaustive optimum over window subsets (tiny instances only)."""
    windows = _candidate_windows(instance)
    if len(windows) > max_windows:
        raise SolverError(
            f"{len(windows)} candidate windows exceed the brute-force "
            f"limit {max_windows}"
        )
    best: OfflineFacilitySolution | None = None
    for size in range(len(windows) + 1):
        for subset in itertools.combinations(windows, size):
            assignment = _best_assignment(instance, list(subset))
            if assignment is None:
                continue
            connection_cost, connections = assignment
            total = sum(w.cost for w in subset) + connection_cost
            if best is None or total < best.cost - 1e-12:
                best = OfflineFacilitySolution(
                    cost=total,
                    leases=tuple(subset),
                    connections=tuple(connections),
                    method="brute-force",
                )
    if best is None:
        raise SolverError("no feasible window subset found")
    return best


def nearest_heuristic(
    instance: FacilityLeasingInstance,
) -> OfflineFacilitySolution:
    """A feasible lease-on-demand heuristic — an upper bound on OPT.

    For each client, either connect to an already-leased facility or lease
    the window minimising (lease cost + distance), whichever is cheaper.
    """
    owned: dict[tuple[int, int, int], Lease] = {}
    connections: list[Connection] = []
    for client in instance.clients:
        open_now = [
            lease for lease in owned.values() if lease.covers(client.arrival)
        ]
        best_existing = None
        if open_now:
            best_existing = min(
                open_now,
                key=lambda lease: instance.distance(
                    lease.resource, client.ident
                ),
            )
        best_new = min(
            (
                instance.facility_lease(i, lease_type.index, client.arrival)
                for i in range(instance.num_facilities)
                for lease_type in instance.schedule
            ),
            key=lambda lease: lease.cost
            + instance.distance(lease.resource, client.ident),
        )
        new_total = best_new.cost + instance.distance(
            best_new.resource, client.ident
        )
        if best_existing is not None and (
            instance.distance(best_existing.resource, client.ident)
            <= new_total
        ):
            facility = best_existing.resource
        else:
            owned[best_new.key] = best_new
            facility = best_new.resource
        connections.append(
            Connection(
                client=client.ident,
                facility=facility,
                distance=instance.distance(facility, client.ident),
            )
        )
    leases = tuple(owned.values())
    total = sum(lease.cost for lease in leases) + sum(
        connection.distance for connection in connections
    )
    return OfflineFacilitySolution(
        cost=total,
        leases=leases,
        connections=tuple(connections),
        method="nearest-heuristic",
    )


def optimum(instance: FacilityLeasingInstance) -> OptBounds:
    """Bracket (or exactly solve) the facility leasing optimum."""
    if HAVE_SCIPY:
        solution = optimal_ilp(instance)
        return OptBounds.exactly(solution.cost, method=solution.method)
    try:
        solution = optimal_brute(instance)
        return OptBounds.exactly(solution.cost, method=solution.method)
    except SolverError:
        upper = nearest_heuristic(instance).cost
        lower = sum(
            min(
                instance.distance(i, client.ident)
                for i in range(instance.num_facilities)
            )
            for client in instance.clients
        )
        return OptBounds(
            lower=lower, upper=upper, exact=False, method="distance+heuristic"
        )
