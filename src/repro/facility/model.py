"""Facility leasing model (thesis Section 4.2, Figure 4.1).

Clients arrive in per-time-step batches and must each be connected, at
their arrival step, to a facility holding an active lease; the objective
sums leasing costs ``c_{ik}`` and connection distances ``d_{ij}``.  The
instance couples facility/client positions in a metric space, the lease
schedule, a per-facility-per-type cost matrix, and the batch arrival
pattern whose shape drives the competitive factor through the series
``H_q`` (Theorem 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import require, require_nonnegative_int
from ..core.lease import Lease, LeaseSchedule
from .metric import Point, euclidean


@dataclass(frozen=True, slots=True)
class Client:
    """One client: identity, position, and arrival time step."""

    ident: int
    point: Point
    arrival: int

    def __post_init__(self) -> None:
        require_nonnegative_int(self.arrival, "Client.arrival")


@dataclass(frozen=True, slots=True)
class ClientBatch:
    """The clients arriving in one time step (the thesis ``D_t``)."""

    arrival: int
    clients: tuple[Client, ...]


@dataclass(frozen=True, slots=True)
class Connection:
    """An online connection decision: client -> facility at a cost."""

    client: int
    facility: int
    distance: float


@dataclass(frozen=True)
class FacilityLeasingInstance:
    """A facility leasing instance.

    Attributes:
        facility_points: positions of the ``m`` facilities.
        lease_costs: ``m x K`` matrix of leasing costs ``c_{ik}``.
        schedule: the ``K`` lease types.
        clients: all clients sorted by arrival.
    """

    facility_points: tuple[Point, ...]
    lease_costs: tuple[tuple[float, ...], ...]
    schedule: LeaseSchedule
    clients: tuple[Client, ...]

    def __post_init__(self) -> None:
        require(len(self.facility_points) > 0, "need at least one facility")
        require(
            len(self.lease_costs) == len(self.facility_points),
            "lease_costs rows must match the number of facilities",
        )
        for row in self.lease_costs:
            require(
                len(row) == self.schedule.num_types,
                "lease_costs columns must match the number of lease types",
            )
            for cost in row:
                require(cost > 0, f"facility lease costs must be > 0, got {cost}")
        previous = None
        for client in self.clients:
            if previous is not None:
                require(
                    client.arrival >= previous,
                    "clients must be sorted by arrival",
                )
            previous = client.arrival
        for index, client in enumerate(self.clients):
            require(
                client.ident == index,
                f"client at position {index} has ident {client.ident}; "
                "idents must be 0..n-1 in arrival order",
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_facilities(self) -> int:
        """Number of potential facility sites ``m``."""
        return len(self.facility_points)

    @property
    def num_clients(self) -> int:
        """Total number of clients ``n``."""
        return len(self.clients)

    def distance(self, facility: int, client: int) -> float:
        """Connection cost ``d_{ij}`` (Euclidean)."""
        return euclidean(
            self.facility_points[facility], self.clients[client].point
        )

    def batches(self) -> list[ClientBatch]:
        """Clients grouped into per-time-step batches ``D_t`` (arrival order)."""
        grouped: dict[int, list[Client]] = {}
        for client in self.clients:
            grouped.setdefault(client.arrival, []).append(client)
        return [
            ClientBatch(arrival=t, clients=tuple(grouped[t]))
            for t in sorted(grouped)
        ]

    def batch_sizes(self) -> list[int]:
        """``|D_t|`` for every step from 0 through the last arrival."""
        if not self.clients:
            return []
        horizon = self.clients[-1].arrival + 1
        sizes = [0] * horizon
        for client in self.clients:
            sizes[client.arrival] += 1
        return sizes

    def facility_lease(self, facility: int, type_index: int, t: int) -> Lease:
        """The aligned lease of ``(i, k)`` covering step ``t`` at cost ``c_{ik}``."""
        lease_type = self.schedule[type_index]
        return Lease(
            resource=facility,
            type_index=type_index,
            start=lease_type.aligned_start(t),
            length=lease_type.length,
            cost=self.lease_costs[facility][type_index],
        )

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def is_feasible_solution(
        self, leases: list[Lease], connections: list[Connection]
    ) -> bool:
        """Every client connected to a facility leased at its arrival step."""
        by_client = {connection.client: connection for connection in connections}
        for client in self.clients:
            connection = by_client.get(client.ident)
            if connection is None:
                return False
            if not any(
                lease.resource == connection.facility
                and lease.covers(client.arrival)
                for lease in leases
            ):
                return False
            actual = self.distance(connection.facility, client.ident)
            if connection.distance < actual - 1e-6:
                return False  # reported connection cost understates distance
        return True

    def solution_cost(
        self, leases: list[Lease], connections: list[Connection]
    ) -> float:
        """Total objective: distinct lease costs plus connection distances."""
        distinct: dict[tuple[int, int, int], float] = {}
        for lease in leases:
            distinct[lease.key] = lease.cost
        return sum(distinct.values()) + sum(
            connection.distance for connection in connections
        )
