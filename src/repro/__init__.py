"""repro — reproduction of "Online Resource Leasing" (Markarian, PODC 2015).

A library of online leasing algorithms with provable competitive ratios,
exact offline baselines, synthetic workload generators, and an empirical
competitive-analysis harness covering all four problem families of the
paper/thesis:

* :mod:`repro.parking` — the parking permit problem (Chapter 2).
* :mod:`repro.setcover` — set (multi)cover leasing (Chapter 3).
* :mod:`repro.facility` — facility leasing (Chapter 4).
* :mod:`repro.deadlines` — leasing with deadlines, OLD and SCLD (Chapter 5).

Shared substrates live in :mod:`repro.core` (lease model, interval model,
stores), :mod:`repro.lp` (covering ILPs and exact solvers),
:mod:`repro.workloads` (request-sequence generators) and
:mod:`repro.analysis` (feasibility verification and ratio reporting).

Quickstart::

    from repro.core import LeaseSchedule, run_online
    from repro.parking import DeterministicParkingPermit, optimal_general
    from repro.parking import make_instance

    schedule = LeaseSchedule.power_of_two(4)      # lengths 1,2,4,8
    instance = make_instance(schedule, [0, 1, 2, 9, 10])
    result = run_online(DeterministicParkingPermit(schedule),
                        instance.rainy_days)
    print(result.cost, optimal_general(instance).cost)
"""

from .core import (
    Lease,
    LeaseSchedule,
    LeaseType,
    OptBounds,
    RatioReport,
    RunResult,
    run_online,
)
from .errors import InfeasibleError, ModelError, ReproError, SolverError

__version__ = "1.0.0"

__all__ = [
    "InfeasibleError",
    "Lease",
    "LeaseSchedule",
    "LeaseType",
    "ModelError",
    "OptBounds",
    "RatioReport",
    "ReproError",
    "RunResult",
    "SolverError",
    "__version__",
    "run_online",
]
