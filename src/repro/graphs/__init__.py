"""Graph leasing problems — the covering/network outlooks of the thesis.

Section 3.5 proposes extending the leasing treatment to graph covering
problems (vertex cover, edge cover); Section 5.1 recalls Meyerson's
SteinerTreeLeasing.  This package realises both on top of the Chapter 3
machinery and networkx:

* :class:`VertexCoverLeasingInstance` / :class:`OnlineVertexCoverLeasing`
  — edges arrive, endpoints are leased; ``delta = 2`` reduction to set
  multicover leasing with an inherited ``O(log(2K) log n)`` guarantee.
* :class:`SteinerLeasingInstance` / :class:`OnlineSteinerLeasing` —
  terminal pairs arrive, edges are leased; greedy discounted-shortest-path
  online algorithm with a per-edge doubling ratchet, plus an offline
  per-round Steiner-tree baseline.
"""

from .edge_cover import (
    EdgeCoverLeasingInstance,
    OnlineEdgeCoverLeasing,
    VertexDemand,
)
from .edge_cover import optimum as edge_cover_optimum
from .steiner import (
    OnlineSteinerLeasing,
    PairDemand,
    SteinerLeasingInstance,
    offline_heuristic,
)
from .vertex_cover import (
    EdgeDemand,
    OnlineVertexCoverLeasing,
    VertexCoverLeasingInstance,
    optimum,
)

__all__ = [
    "EdgeCoverLeasingInstance",
    "EdgeDemand",
    "OnlineEdgeCoverLeasing",
    "OnlineSteinerLeasing",
    "OnlineVertexCoverLeasing",
    "PairDemand",
    "SteinerLeasingInstance",
    "VertexCoverLeasingInstance",
    "VertexDemand",
    "edge_cover_optimum",
    "offline_heuristic",
    "optimum",
]
