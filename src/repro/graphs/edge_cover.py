"""Edge cover leasing — the second covering problem named in Section 3.5.

Dual to vertex cover leasing: *vertices* demand coverage over time and
must be covered by leasing an *incident edge*.  The reduction to set
(multi)cover leasing makes elements the vertices and sets the edges, each
set of size two, so ``delta`` equals the maximum degree and Theorem 3.3
gives an ``O(log(deg_max * K) log n)``-competitive algorithm for free.

Isolated vertices are rejected at model construction: a vertex with no
incident edge can never be covered, which is an instance bug.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import require, require_nonnegative_int
from ..core.lease import Lease, LeaseSchedule
from ..core.results import OptBounds
from ..setcover.model import (
    MulticoverDemand,
    SetMulticoverLeasingInstance,
    SetSystem,
)
from ..setcover.multicover import OnlineSetMulticoverLeasing
from ..setcover.offline import optimum as multicover_optimum


@dataclass(frozen=True, slots=True)
class VertexDemand:
    """Vertex ``v`` requires an incident leased edge at day ``arrival``."""

    vertex: int
    arrival: int

    def __post_init__(self) -> None:
        require_nonnegative_int(self.vertex, "vertex")
        require_nonnegative_int(self.arrival, "arrival")


@dataclass(frozen=True)
class EdgeCoverLeasingInstance:
    """Edge cover leasing over a fixed edge set.

    Attributes:
        num_vertices: vertices are ``0..num_vertices-1``.
        edges: the undirected edge set as ``(u, v)`` pairs.
        edge_costs: ``len(edges) x K`` lease cost matrix (row order
            matches ``edges``).
        schedule: the ``K`` lease types.
        demands: vertex arrivals sorted by time.
    """

    num_vertices: int
    edges: tuple[tuple[int, int], ...]
    edge_costs: tuple[tuple[float, ...], ...]
    schedule: LeaseSchedule
    demands: tuple[VertexDemand, ...]

    def __post_init__(self) -> None:
        require(len(self.edges) > 0, "need at least one edge")
        require(
            len(self.edge_costs) == len(self.edges),
            "one cost row per edge required",
        )
        covered_vertices: set[int] = set()
        for u, v in self.edges:
            require(u != v, f"self-loop ({u},{v}) not allowed")
            require(
                0 <= u < self.num_vertices and 0 <= v < self.num_vertices,
                f"edge ({u},{v}) out of vertex range",
            )
            covered_vertices.update((u, v))
        previous = None
        for demand in self.demands:
            require(
                demand.vertex in covered_vertices,
                f"vertex {demand.vertex} has no incident edge",
            )
            if previous is not None:
                require(
                    demand.arrival >= previous,
                    "vertex demands must be sorted by arrival",
                )
            previous = demand.arrival

    @property
    def max_degree(self) -> int:
        """Maximum vertex degree — the reduction's delta."""
        degree: dict[int, int] = {}
        for u, v in self.edges:
            degree[u] = degree.get(u, 0) + 1
            degree[v] = degree.get(v, 0) + 1
        return max(degree.values())

    def to_multicover(self) -> SetMulticoverLeasingInstance:
        """Elements = vertices, sets = edges (each of size two)."""
        system = SetSystem(
            num_elements=self.num_vertices,
            sets=[frozenset(edge) for edge in self.edges],
            lease_costs=[list(row) for row in self.edge_costs],
        )
        demands = tuple(
            MulticoverDemand(
                element=demand.vertex, arrival=demand.arrival, coverage=1
            )
            for demand in self.demands
        )
        return SetMulticoverLeasingInstance(
            system=system, schedule=self.schedule, demands=demands
        )

    def is_feasible_solution(self, leases: list[Lease]) -> bool:
        """Every demanded vertex has an incident edge leased at arrival."""
        incident: dict[int, list[int]] = {}
        for index, (u, v) in enumerate(self.edges):
            incident.setdefault(u, []).append(index)
            incident.setdefault(v, []).append(index)
        return all(
            any(
                lease.resource in incident.get(demand.vertex, ())
                and lease.covers(demand.arrival)
                for lease in leases
            )
            for demand in self.demands
        )


class OnlineEdgeCoverLeasing:
    """Online edge cover leasing via the Theorem 3.3 algorithm."""

    def __init__(
        self, instance: EdgeCoverLeasingInstance, seed: int | None = 0
    ):
        self.instance = instance
        self._inner = OnlineSetMulticoverLeasing(
            instance.to_multicover(), seed=seed
        )

    def on_demand(self, demand: VertexDemand | tuple[int, int]) -> None:
        """Cover one arriving vertex with an incident edge lease."""
        if not isinstance(demand, VertexDemand):
            vertex, arrival = demand
            demand = VertexDemand(vertex=vertex, arrival=arrival)
        self._inner.on_demand(
            MulticoverDemand(element=demand.vertex, arrival=demand.arrival)
        )

    @property
    def cost(self) -> float:
        """Total leasing cost so far."""
        return self._inner.cost

    @property
    def leases(self) -> tuple[Lease, ...]:
        """Purchased edge leases (resource = edge index)."""
        return self._inner.leases


def optimum(instance: EdgeCoverLeasingInstance) -> OptBounds:
    """Exact (or bracketed) optimum via the reduction's ILP."""
    return multicover_optimum(instance.to_multicover())
