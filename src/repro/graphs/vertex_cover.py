"""Vertex cover leasing — the Chapter 3 outlook, realised.

Section 3.5 points out that the multicover machinery "opens a research
room for a wide range of covering problems (e.g., vertex cover, edge
cover)" in the leasing setting.  This module instantiates the leasing
framework (Section 2.3) for online vertex cover: *edges* arrive over time
and must be covered by a *vertex* holding an active lease.

The reduction to set multicover leasing is the textbook one — elements
are edges, sets are vertices, each element belongs to exactly its two
endpoints, so ``delta = 2`` — which immediately gives an
``O(log(2K) log n)``-competitive algorithm via Theorem 3.3, with ``n``
the number of distinct edges.  Everything (model, online algorithm,
exact baseline) is inherited through the reduction, so this module is a
thin, well-typed adapter plus graph-native validation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import require, require_nonnegative_int
from ..core.lease import Lease, LeaseSchedule
from ..core.results import OptBounds
from ..setcover.model import (
    MulticoverDemand,
    SetMulticoverLeasingInstance,
    SetSystem,
)
from ..setcover.multicover import OnlineSetMulticoverLeasing
from ..setcover.offline import optimum as multicover_optimum


@dataclass(frozen=True, slots=True)
class EdgeDemand:
    """An edge ``{u, v}`` arriving at day ``t``; one endpoint must be leased."""

    u: int
    v: int
    arrival: int

    def __post_init__(self) -> None:
        require_nonnegative_int(self.u, "u")
        require_nonnegative_int(self.v, "v")
        require_nonnegative_int(self.arrival, "arrival")
        require(self.u != self.v, "self-loops cannot be covered")

    @property
    def endpoints(self) -> frozenset[int]:
        return frozenset((self.u, self.v))


@dataclass(frozen=True)
class VertexCoverLeasingInstance:
    """Online vertex cover leasing over a fixed vertex set.

    Attributes:
        num_vertices: vertices are ``0..num_vertices-1``.
        vertex_costs: ``num_vertices x K`` lease cost matrix ``c_{vk}``.
        schedule: the ``K`` lease types.
        demands: edge arrivals sorted by time.
    """

    num_vertices: int
    vertex_costs: tuple[tuple[float, ...], ...]
    schedule: LeaseSchedule
    demands: tuple[EdgeDemand, ...]

    def __post_init__(self) -> None:
        require(self.num_vertices >= 2, "need at least two vertices")
        require(
            len(self.vertex_costs) == self.num_vertices,
            "vertex_costs rows must match num_vertices",
        )
        previous = None
        for demand in self.demands:
            require(
                demand.u < self.num_vertices
                and demand.v < self.num_vertices,
                f"edge ({demand.u},{demand.v}) out of vertex range",
            )
            if previous is not None:
                require(
                    demand.arrival >= previous,
                    "edge demands must be sorted by arrival",
                )
            previous = demand.arrival

    # ------------------------------------------------------------------
    # Reduction to set multicover leasing
    # ------------------------------------------------------------------
    def to_multicover(self) -> SetMulticoverLeasingInstance:
        """Elements = distinct edges, sets = vertices (delta = 2).

        Each distinct undirected edge becomes one element; the two
        endpoint vertices are the only sets containing it.  Repeat
        arrivals of the same edge map to repeat demands of its element.
        """
        edge_ids: dict[frozenset[int], int] = {}
        for demand in self.demands:
            edge_ids.setdefault(demand.endpoints, len(edge_ids))
        num_elements = max(1, len(edge_ids))
        members: list[set[int]] = [set() for _ in range(self.num_vertices)]
        for endpoints, element in edge_ids.items():
            for vertex in endpoints:
                members[vertex].add(element)
        # SetSystem forbids empty sets; isolated vertices get a dummy
        # element no demand ever references.
        dummy_needed = any(not chosen for chosen in members)
        if dummy_needed:
            num_elements += 1
            dummy = num_elements - 1
            for chosen in members:
                if not chosen:
                    chosen.add(dummy)
        system = SetSystem(
            num_elements=num_elements,
            sets=[frozenset(chosen) for chosen in members],
            lease_costs=[list(row) for row in self.vertex_costs],
        )
        demands = tuple(
            MulticoverDemand(
                element=edge_ids[demand.endpoints],
                arrival=demand.arrival,
                coverage=1,
            )
            for demand in self.demands
        )
        return SetMulticoverLeasingInstance(
            system=system, schedule=self.schedule, demands=demands
        )

    # ------------------------------------------------------------------
    # Graph-native verification
    # ------------------------------------------------------------------
    def is_feasible_solution(self, leases: list[Lease]) -> bool:
        """Every arriving edge has an endpoint leased at its arrival."""
        return all(
            any(
                lease.resource in demand.endpoints
                and lease.covers(demand.arrival)
                for lease in leases
            )
            for demand in self.demands
        )


class OnlineVertexCoverLeasing:
    """Online vertex cover leasing via the Theorem 3.3 algorithm.

    With ``delta = 2`` the inherited guarantee reads
    ``O(log(2K) log n)`` in expectation.
    """

    def __init__(
        self, instance: VertexCoverLeasingInstance, seed: int | None = 0
    ):
        self.instance = instance
        self._multicover_instance = instance.to_multicover()
        self._inner = OnlineSetMulticoverLeasing(
            self._multicover_instance, seed=seed
        )
        self._edge_ids: dict[frozenset[int], int] = {}
        for demand in instance.demands:
            self._edge_ids.setdefault(demand.endpoints, len(self._edge_ids))

    def on_demand(self, demand: EdgeDemand | tuple[int, int, int]) -> None:
        """Cover one arriving edge."""
        if not isinstance(demand, EdgeDemand):
            u, v, arrival = demand
            demand = EdgeDemand(u=u, v=v, arrival=arrival)
        element = self._edge_ids.get(demand.endpoints)
        require(
            element is not None,
            "streamed edge was not declared in the instance demands",
        )
        self._inner.on_demand(
            MulticoverDemand(element=element, arrival=demand.arrival)
        )

    @property
    def cost(self) -> float:
        """Total leasing cost so far."""
        return self._inner.cost

    @property
    def leases(self) -> tuple[Lease, ...]:
        """Purchased vertex leases (resource = vertex id)."""
        return self._inner.leases


def optimum(instance: VertexCoverLeasingInstance) -> OptBounds:
    """Exact (or bracketed) optimum via the multicover reduction's ILP."""
    return multicover_optimum(instance.to_multicover())
