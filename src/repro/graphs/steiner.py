"""Steiner tree leasing — the model of Meyerson [2] cited in Section 5.1.

Pairs of communicating terminals announce themselves over time; to serve
a pair at time ``t`` there must be a path between them whose every edge
holds an active lease at ``t``.  Edges can be leased for ``K`` durations
with economies of scale.  Meyerson gave an O(log n log K)-competitive
algorithm; this module provides the model, a greedy discounted-shortest-
path online algorithm in his spirit, and an offline per-window heuristic
baseline, so the thesis' "proceeding in this direction, one may look at
SteinerTreeLeasing" outlook has a concrete, tested substrate.

The online algorithm routes each pair along the shortest path in a
*discounted* graph: an edge whose lease is already active costs zero,
otherwise its cheapest applicable lease cost.  Lease lengths for newly
leased edges are chosen by the classical doubling rule — an edge that has
been re-leased often graduates to the next longer type — which is the
deterministic analogue of Meyerson's randomized type selection.  No
competitive guarantee is claimed here (the thesis leaves it as future
work); the benchmark measures the gap against the offline heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .._validation import require, require_nonnegative_int
from ..core.lease import Lease, LeaseSchedule
from ..core.store import LeaseStore


@dataclass(frozen=True, slots=True)
class PairDemand:
    """Terminals ``(s, t)`` that must be connected at day ``arrival``."""

    s: int
    t: int
    arrival: int

    def __post_init__(self) -> None:
        require_nonnegative_int(self.arrival, "arrival")
        require(self.s != self.t, "a terminal pair needs distinct nodes")


@dataclass(frozen=True)
class SteinerLeasingInstance:
    """Steiner tree leasing over an undirected weighted graph.

    Attributes:
        graph: networkx graph; edge attribute ``weight`` scales the lease
            cost of that edge (cost of leasing edge ``e`` with type ``k``
            is ``weight(e) * schedule[k].cost``).
        schedule: the ``K`` lease types.
        demands: terminal pairs sorted by arrival.
    """

    graph: nx.Graph
    schedule: LeaseSchedule
    demands: tuple[PairDemand, ...]

    def __post_init__(self) -> None:
        require(
            self.graph.number_of_nodes() >= 2,
            "graph needs at least two nodes",
        )
        for u, v, data in self.graph.edges(data=True):
            require(
                data.get("weight", 0) > 0,
                f"edge ({u},{v}) needs a positive weight",
            )
        previous = None
        for demand in self.demands:
            require(
                self.graph.has_node(demand.s)
                and self.graph.has_node(demand.t),
                f"pair ({demand.s},{demand.t}) not in graph",
            )
            if previous is not None:
                require(
                    demand.arrival >= previous,
                    "pair demands must be sorted by arrival",
                )
            previous = demand.arrival

    def edge_ids(self) -> dict[frozenset, int]:
        """A stable integer id per undirected edge (lease resource ids)."""
        return {
            frozenset((u, v)): index
            for index, (u, v) in enumerate(sorted(self.graph.edges()))
        }

    def lease_cost(self, u, v, type_index: int) -> float:
        """Cost of leasing edge ``{u, v}`` with lease type ``type_index``."""
        weight = self.graph[u][v]["weight"]
        return weight * self.schedule[type_index].cost

    def is_feasible_solution(self, leases: list[Lease]) -> bool:
        """Each pair connected through active leased edges at its arrival."""
        ids = self.edge_ids()
        for demand in self.demands:
            active = nx.Graph()
            active.add_nodes_from(self.graph.nodes())
            for edge, edge_id in ids.items():
                if any(
                    lease.resource == edge_id
                    and lease.covers(demand.arrival)
                    for lease in leases
                ):
                    u, v = tuple(edge)
                    active.add_edge(u, v)
            if not nx.has_path(active, demand.s, demand.t):
                return False
        return True


class OnlineSteinerLeasing:
    """Greedy discounted-shortest-path online algorithm with lease doubling.

    For each arriving pair, edges already under an active lease are free;
    other edges cost their cheapest lease.  The pair is routed along the
    cheapest path and missing leases are bought.  An edge's lease type
    starts at the shortest and doubles (moves up one type) each time the
    edge must be re-leased — the ski-rental ratchet applied per edge.
    """

    def __init__(self, instance: SteinerLeasingInstance):
        self.instance = instance
        self.schedule = instance.schedule
        self.store = LeaseStore()
        self._edge_ids = instance.edge_ids()
        self._release_count: dict[int, int] = {}

    def _edge_price(self, u, v, t: int) -> float:
        edge_id = self._edge_ids[frozenset((u, v))]
        if self.store.covers(edge_id, t):
            return 0.0
        type_index = self._next_type(edge_id)
        return self.instance.lease_cost(u, v, type_index)

    def _next_type(self, edge_id: int) -> int:
        """Lease type the edge would be bought with (doubling ratchet)."""
        return min(
            self._release_count.get(edge_id, 0),
            self.schedule.num_types - 1,
        )

    def on_demand(self, demand: PairDemand | tuple[int, int, int]) -> None:
        """Connect one arriving terminal pair."""
        if not isinstance(demand, PairDemand):
            s, t, arrival = demand
            demand = PairDemand(s=s, t=t, arrival=arrival)
        t = demand.arrival
        priced = nx.Graph()
        priced.add_nodes_from(self.instance.graph.nodes())
        for u, v in self.instance.graph.edges():
            priced.add_edge(u, v, price=self._edge_price(u, v, t))
        path = nx.shortest_path(
            priced, demand.s, demand.t, weight="price"
        )
        for u, v in zip(path, path[1:]):
            edge_id = self._edge_ids[frozenset((u, v))]
            if self.store.covers(edge_id, t):
                continue
            type_index = self._next_type(edge_id)
            lease_type = self.schedule[type_index]
            self.store.buy(
                Lease(
                    resource=edge_id,
                    type_index=type_index,
                    start=lease_type.aligned_start(t),
                    length=lease_type.length,
                    cost=self.instance.lease_cost(u, v, type_index),
                )
            )
            self._release_count[edge_id] = (
                self._release_count.get(edge_id, 0) + 1
            )

    @property
    def cost(self) -> float:
        """Total leasing cost so far."""
        return self.store.total_cost

    @property
    def leases(self) -> tuple[Lease, ...]:
        """Purchased edge leases."""
        return self.store.leases


def offline_heuristic(instance: SteinerLeasingInstance) -> float:
    """A feasible hindsight solution: per-l_max-round Steiner trees.

    Partition time into rounds of length ``l_max``; for each round, build
    an (approximate) Steiner tree spanning every terminal active in the
    round and lease all its edges with the longest type for the whole
    round.  Feasible by construction, so an *upper* bound on OPT; the
    online/offline gap reported by the benchmark is therefore a lower
    bound on the true competitive ratio.
    """
    if not instance.demands:
        return 0.0
    lmax = instance.schedule.lmax
    longest = instance.schedule[instance.schedule.num_types - 1]
    total = 0.0
    horizon = instance.demands[-1].arrival + 1
    for round_start in range(0, horizon, lmax):
        terminals: set = set()
        for demand in instance.demands:
            if round_start <= demand.arrival < round_start + lmax:
                terminals.add(demand.s)
                terminals.add(demand.t)
        if len(terminals) < 2:
            continue
        tree = nx.algorithms.approximation.steiner_tree(
            instance.graph, terminals, weight="weight"
        )
        total += sum(
            instance.graph[u][v]["weight"] * longest.cost
            for u, v in tree.edges()
        )
    return total
