"""Offline baselines for set multicover leasing.

Three reference points bracketing the offline optimum of Definition 2.2:

* :func:`greedy` — density-greedy over candidate triples, respecting the
  distinct-sets rule; a feasible solution, hence an *upper* bound on OPT.
* :func:`optimum` — the exact Figure 3.2 ILP optimum via
  :func:`repro.lp.solver.opt_bounds` (exact for the instance sizes used in
  tests and benchmarks, bracketed for larger sweeps).
* LP relaxation (inside :func:`optimum`'s bracket) — a *lower* bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.lease import Lease
from ..core.results import OptBounds
from ..lp.solver import opt_bounds, solve_ilp
from .model import SetMulticoverLeasingInstance


@dataclass(frozen=True, slots=True)
class GreedySolution:
    """A feasible greedy solution: cost, leases, and demand assignments."""

    cost: float
    leases: tuple[Lease, ...]


def greedy(instance: SetMulticoverLeasingInstance) -> GreedySolution:
    """Density greedy: repeatedly buy the triple covering most units per cost.

    A unit is one missing (demand, distinct-set) slot; a triple
    ``(S, k, window)`` covers a unit of demand ``(j, t, p)`` when ``j`` is
    in ``S``, the window covers ``t``, fewer than ``p`` sets serve the
    demand so far, and ``S`` is not already one of them.
    """
    demands = instance.demands
    assigned: list[set[int]] = [set() for _ in demands]

    # Candidate triples, deduped across demands.
    triples: dict[tuple[int, int, int], Lease] = {}
    demands_of_triple: dict[tuple[int, int, int], list[int]] = {}
    for demand_index, demand in enumerate(demands):
        for lease in instance.candidates(demand.element, demand.arrival):
            triples[lease.key] = lease
            demands_of_triple.setdefault(lease.key, []).append(demand_index)

    bought: dict[tuple[int, int, int], Lease] = {}
    bought_sets_by_demand = assigned  # alias for readability below

    def uncovered_units(key: tuple[int, int, int]) -> int:
        lease = triples[key]
        return sum(
            1
            for demand_index in demands_of_triple[key]
            if (
                len(bought_sets_by_demand[demand_index])
                < demands[demand_index].coverage
                and lease.resource
                not in bought_sets_by_demand[demand_index]
            )
        )

    while any(
        len(sets) < demand.coverage
        for sets, demand in zip(assigned, demands)
    ):
        best_key, best_density = None, 0.0
        for key, lease in triples.items():
            if key in bought:
                continue
            units = uncovered_units(key)
            if units == 0:
                continue
            density = units / lease.cost
            if density > best_density:
                best_key, best_density = key, density
        if best_key is None:  # pragma: no cover - instance validation prevents
            raise RuntimeError("greedy stalled on a feasible instance")
        lease = triples[best_key]
        bought[best_key] = lease
        for demand_index in demands_of_triple[best_key]:
            demand = demands[demand_index]
            if (
                len(assigned[demand_index]) < demand.coverage
                and lease.resource not in assigned[demand_index]
            ):
                assigned[demand_index].add(lease.resource)

    leases = tuple(bought.values())
    return GreedySolution(
        cost=sum(lease.cost for lease in leases), leases=leases
    )


def optimum(
    instance: SetMulticoverLeasingInstance,
    exact_variable_limit: int = 4_000,
) -> OptBounds:
    """Bracket (or exactly solve) the Figure 3.2 ILP optimum."""
    return opt_bounds(
        instance.to_covering_program(),
        exact_variable_limit=exact_variable_limit,
    )


def optimal_leases(
    instance: SetMulticoverLeasingInstance,
) -> tuple[float, tuple[Lease, ...]]:
    """Exact optimum with the selected leases (small instances only)."""
    program = instance.to_covering_program()
    solution = solve_ilp(program)
    leases = tuple(program.selected_payloads(list(solution.x)))
    return solution.value, leases
