"""The shared fractional-increment primitive of Chapters 3 and 5.

Algorithms 2, 3 and 5 all grow an online fractional solution the same
way: while the fractions of the current candidate list sum below one,
every candidate ``(key, cost)`` is updated

    ``f <- f * (1 + 1/cost) + 1 / (|Q| * cost)``.

Lemma 3.1 shows each such *increment* adds at most two to the fractional
cost and that ``O(c_OPT * log |Q|)`` increments suffice before the sum
reaches one.  The primitive is factored out so all three algorithms share
one audited implementation and the increment-count bound can be property
tested once.
"""

from __future__ import annotations

from typing import Mapping, MutableMapping, Sequence


def candidate_sum(
    fractions: Mapping, keys: Sequence
) -> float:
    """Sum of current fractions over ``keys`` (missing keys count zero)."""
    return sum(fractions.get(key, 0.0) for key in keys)


def raise_fractions(
    fractions: MutableMapping,
    candidates: Sequence[tuple[object, float]],
    target: float = 1.0,
) -> int:
    """Grow candidate fractions multiplicatively until they sum to ``target``.

    Args:
        fractions: persistent fraction state (shared across demands).
        candidates: ``(key, cost)`` pairs, the ``Q`` of the current call.
        target: required fractional coverage (1 everywhere in the thesis).

    Returns:
        The number of increments performed (0 if already covered).
    """
    if not candidates:
        return 0
    keys = [key for key, _ in candidates]
    size = len(candidates)
    increments = 0
    while candidate_sum(fractions, keys) < target:
        increments += 1
        for key, cost in candidates:
            current = fractions.get(key, 0.0)
            fractions[key] = (
                current * (1.0 + 1.0 / cost) + 1.0 / (size * cost)
            )
    return increments


def fractional_cost(
    fractions: Mapping, cost_of
) -> float:
    """Cost-weighted sum of fractions, each capped at one.

    ``cost_of(key)`` maps a fraction key to its lease cost.  Capping at
    one matches the LP relaxation (``x <= 1``); the multiplicative update
    may overshoot slightly on the final increment.
    """
    return sum(
        cost_of(key) * min(1.0, fraction)
        for key, fraction in fractions.items()
    )
