"""The randomized online algorithm for SetMulticoverLeasing (Algorithms 3+4).

When an element ``(j, t)`` with coverage requirement ``p`` arrives, the
algorithm repeatedly *i-covers* it: each call takes the candidate triples
whose sets do not already serve this demand, raises their fractions until
they sum to one (:func:`~repro.setcover.fractional.raise_fractions`), then
rounds — a candidate is leased when its fraction exceeds its threshold
``mu``, the minimum of ``2 * ceil(log2(n+1))`` independent uniforms drawn
once per triple.  If rounding leases nothing new, the cheapest candidate
is bought (Lemma 3.2 shows this fallback fires with probability at most
``1/n^2``).

Theorem 3.3: the algorithm is ``O(log(delta K) log n)``-competitive.
"""

from __future__ import annotations

import math
import random

from ..core.lease import Lease
from ..core.store import LeaseStore
from ..errors import InfeasibleError
from ..workloads.rng import make_rng
from .fractional import fractional_cost, raise_fractions
from .model import MulticoverDemand, SetMulticoverLeasingInstance


class OnlineSetMulticoverLeasing:
    """Online randomized algorithm for set multicover leasing.

    Args:
        instance: supplies the set system and schedule; demands are fed
            through :meth:`on_demand` (the instance's own demand list is
            only used by verifiers, so streaming new demands is fine).
        seed: seeds the per-triple threshold draws.
        num_threshold_draws: how many uniforms are minimised into each
            triple's threshold ``mu``; defaults to ``2 * ceil(log2(n+1))``
            per Algorithm 3.  The repetitions variant (Corollary 3.5)
            overrides this with ``2 * ceil(log2(delta*n + 1))``.
    """

    def __init__(
        self,
        instance: SetMulticoverLeasingInstance,
        seed: int | None = 0,
        num_threshold_draws: int | None = None,
    ):
        self.instance = instance
        self.system = instance.system
        self.schedule = instance.schedule
        self.store = LeaseStore()
        self.fractions: dict[tuple[int, int, int], float] = {}
        self._mu: dict[tuple[int, int, int], float] = {}
        self._rng: random.Random = make_rng(seed)
        if num_threshold_draws is None:
            num_threshold_draws = 2 * math.ceil(
                math.log2(self.system.num_elements + 1)
            )
        self.num_threshold_draws = max(1, num_threshold_draws)
        self.fallback_purchases = 0
        self.increments = 0

    # ------------------------------------------------------------------
    # Thresholds
    # ------------------------------------------------------------------
    def _threshold(self, key: tuple[int, int, int]) -> float:
        """The triple's ``mu``: min of the pre-committed uniform draws.

        Drawn lazily but memoised, which is equivalent to drawing all
        thresholds up front (each triple's draws are independent of the
        demand sequence).
        """
        if key not in self._mu:
            self._mu[key] = min(
                self._rng.random() for _ in range(self.num_threshold_draws)
            )
        return self._mu[key]

    # ------------------------------------------------------------------
    # Online interface
    # ------------------------------------------------------------------
    def on_demand(self, demand: MulticoverDemand | tuple) -> None:
        """Serve one arriving element until it is ``p``-covered."""
        if not isinstance(demand, MulticoverDemand):
            element, arrival, *rest = demand
            coverage = rest[0] if rest else 1
            demand = MulticoverDemand(element, arrival, coverage)
        containing = self.system.sets_containing(demand.element)
        if len(containing) < demand.coverage:
            raise InfeasibleError(
                f"element {demand.element} belongs to {len(containing)} sets; "
                f"cannot {demand.coverage}-cover it"
            )
        # Sets already serving this demand: leased and active at arrival.
        used = {
            set_index
            for set_index in containing
            if self.store.covers(set_index, demand.arrival)
        }
        guard = 0
        while len(used) < demand.coverage:
            guard += 1
            if guard > demand.coverage + len(containing):
                raise InfeasibleError(
                    "i-cover loop failed to make progress "
                    f"for element {demand.element}"
                )
            newly = self._cover_once(demand, used)
            used.update(newly)

    def _cover_once(
        self, demand: MulticoverDemand, used: set[int]
    ) -> set[int]:
        """One i-Cover call: returns the set indices newly serving the demand."""
        candidates = [
            lease
            for lease in self.instance.candidates(
                demand.element, demand.arrival
            )
            if lease.resource not in used
        ]
        if not candidates:
            raise InfeasibleError(
                f"no remaining candidate sets for element {demand.element}"
            )
        self.increments += raise_fractions(
            self.fractions,
            [(lease.key, lease.cost) for lease in candidates],
        )
        newly: set[int] = set()
        for lease in candidates:
            fraction = self.fractions.get(lease.key, 0.0)
            if fraction > self._threshold(lease.key):
                self.store.buy(lease)
                newly.add(lease.resource)
        if not newly:
            self.fallback_purchases += 1
            cheapest = min(candidates, key=lambda lease: lease.cost)
            self.store.buy(cheapest)
            newly.add(cheapest.resource)
        return newly

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        """Total cost of purchases so far."""
        return self.store.total_cost

    @property
    def fractional_cost(self) -> float:
        """Cost of the online fractional solution (Lemma 3.1's quantity)."""
        return fractional_cost(
            self.fractions,
            cost_of=lambda key: self.system.cost(key[0], key[1]),
        )

    @property
    def leases(self) -> tuple[Lease, ...]:
        """Purchased leases in purchase order."""
        return self.store.leases
