"""The special cases of SetMulticoverLeasing (thesis Section 3.1/3.4).

Three classical problems fall out of the leasing model by fixing
parameters:

* **SetCoverLeasing** — ``p = 1`` for every element.  The thesis notes the
  multicover algorithm is its first competitive online algorithm.
* **OnlineSetMulticover** (Berman & DasGupta) — ``K = 1`` with one lease
  long enough to never expire (Corollary 3.4: optimal
  ``O(log delta log n)``).
* **OnlineSetCoverWithRepetitions** (Alon et al.) — elements may arrive
  repeatedly and each arrival must be served by a *different* set;
  realised by tracking used sets per element across arrivals and widening
  the threshold draws to ``2 ceil(log2(delta n + 1))`` (Corollary 3.5).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..core.framework import buy_forever_schedule
from ..core.lease import Lease, LeaseSchedule
from ..errors import InfeasibleError
from .model import (
    MulticoverDemand,
    SetMulticoverLeasingInstance,
    SetSystem,
)
from .multicover import OnlineSetMulticoverLeasing


class OnlineSetCoverLeasing(OnlineSetMulticoverLeasing):
    """SetCoverLeasing: the ``p = 1`` specialisation (first online algorithm)."""

    def on_demand(self, demand) -> None:
        """Serve an arrival ``(element, t)``; coverage is forced to one."""
        if isinstance(demand, MulticoverDemand):
            demand = MulticoverDemand(demand.element, demand.arrival, 1)
        else:
            element, arrival, *_ = demand
            demand = MulticoverDemand(element, arrival, 1)
        super().on_demand(demand)


def non_leasing_instance(
    num_elements: int,
    sets: list,
    set_costs: list[float],
    horizon: int,
    demands: list[tuple[int, int, int]],
) -> SetMulticoverLeasingInstance:
    """Build the ``K = 1`` infinite-lease instance of Corollary 3.4.

    One lease type spanning the entire horizon at the set's buy cost: the
    leasing algorithm then *is* the classical online set multicover
    algorithm.

    Args:
        num_elements: universe size.
        sets: set family.
        set_costs: classical one-off cost per set (``c_S``).
        horizon: strict upper bound on all demand arrival times.
        demands: ``(element, arrival, coverage)`` triples sorted by arrival.
    """
    schedule = buy_forever_schedule(horizon, cost=1.0)
    system = SetSystem(
        num_elements=num_elements,
        sets=sets,
        lease_costs=[[float(c)] for c in set_costs],
    )
    return SetMulticoverLeasingInstance(
        system=system,
        schedule=schedule,
        demands=tuple(MulticoverDemand(*d) for d in demands),
    )


class OnlineSetCoverWithRepetitions(OnlineSetMulticoverLeasing):
    """Alon et al.'s repetitions problem via the leasing machinery.

    Elements arrive repeatedly; arrival ``r`` of element ``e`` must be
    assigned a set not used by arrivals ``1..r-1`` of ``e``.  Per
    Corollary 3.5 the threshold draws are widened to
    ``2 ceil(log2(delta n + 1))``.

    Demands are ``(element, arrival)`` pairs; coverage is implicit (one
    new set per arrival).
    """

    def __init__(
        self,
        instance: SetMulticoverLeasingInstance,
        seed: int | None = 0,
    ):
        draws = 2 * math.ceil(
            math.log2(
                instance.system.delta * instance.system.num_elements + 1
            )
        )
        super().__init__(instance, seed=seed, num_threshold_draws=draws)
        self._used_by_element: dict[int, set[int]] = {}
        self.assignments: list[tuple[int, int, int]] = []

    def on_demand(self, demand) -> None:
        """Serve one (repeated) arrival with a set unused by prior arrivals."""
        if isinstance(demand, MulticoverDemand):
            element, arrival = demand.element, demand.arrival
        else:
            element, arrival, *_ = demand
        used = self._used_by_element.setdefault(element, set())
        containing = set(self.system.sets_containing(element))
        if used >= containing:
            raise InfeasibleError(
                f"element {element} has exhausted all {len(containing)} sets"
            )
        # A set leased for another demand but new to this element serves it
        # for free (its indicator variable is already one).
        available = {
            set_index
            for set_index in containing - used
            if self.store.covers(set_index, arrival)
        }
        if not available:
            target = MulticoverDemand(element, arrival, 1)
            available = self._cover_once(target, set(used))
        chosen = min(available)
        used.add(chosen)
        self.assignments.append((element, arrival, chosen))

    def is_assignment_valid(self) -> bool:
        """Each element's arrivals got pairwise distinct, containing sets."""
        seen: dict[int, set[int]] = {}
        for element, arrival, set_index in self.assignments:
            if element not in set(self.system.sets[set_index]):
                return False
            if not self.store.covers(set_index, arrival):
                return False
            if set_index in seen.setdefault(element, set()):
                return False
            seen[element].add(set_index)
        return True


def random_classic_multicover_instance(
    num_elements: int, rng: random.Random
) -> SetMulticoverLeasingInstance:
    """The E7 instance family: classical online set multicover (Cor 3.4).

    A random set system where every element is contained in at least two
    sets (so coverage-2 demands are always feasible), wrapped into the
    ``K = 1`` infinite-lease form — the workload the Corollary 3.4
    benchmark and the ``setcover-e07-*`` scenarios replay.
    """
    num_sets = max(4, num_elements // 2)
    sets: list[set[int]] = []
    for _ in range(num_sets):
        size = rng.randint(2, max(2, num_elements // 2))
        sets.append(set(rng.sample(range(num_elements), size)))
    # Guarantee coverage depth 2 for every element.
    for element in range(num_elements):
        containing = [i for i, members in enumerate(sets) if element in members]
        while len(containing) < 2:
            target = rng.randrange(num_sets)
            sets[target].add(element)
            containing = [
                i for i, members in enumerate(sets) if element in members
            ]
    costs = [1.0 + rng.random() * 3.0 for _ in range(num_sets)]
    demands = [
        (element, t, rng.randint(1, 2))
        for t, element in enumerate(rng.sample(range(num_elements), num_elements))
    ]
    return non_leasing_instance(
        num_elements, sets, costs, horizon=num_elements + 1, demands=demands
    )


@dataclass(frozen=True)
class RepetitionsInstance:
    """An OnlineSetCoverWithRepetitions workload: base instance + stream.

    ``base`` is the ``K = 1`` infinite-lease instance the algorithm runs
    on; ``stream`` is the repeated-arrival sequence ``(element, t)`` fed
    to :meth:`OnlineSetCoverWithRepetitions.on_demand`.  The exact ILP
    baseline lives on :meth:`rewritten` — the multicover rewriting of the
    same stream (the r-th arrival of an element demands coverage r).
    """

    base: SetMulticoverLeasingInstance
    stream: tuple[tuple[int, int], ...]

    def rewritten(self) -> SetMulticoverLeasingInstance:
        """The equivalent multicover instance (the Corollary 3.5 baseline)."""
        return SetMulticoverLeasingInstance(
            system=self.base.system,
            schedule=self.base.schedule,
            demands=tuple(repetitions_to_multicover(list(self.stream))),
        )


def random_repetitions_instance(
    num_elements: int, arrivals: int, rng: random.Random
) -> RepetitionsInstance:
    """The E8 workload: a repeated-arrival stream with bounded depth.

    Every element is pushed into at least four sets, and no element
    arrives more than four times, so each arrival can always be served by
    a fresh set — the stream the Corollary 3.5 benchmark and the
    ``setcover-e08-*`` scenarios replay.
    """
    num_sets = max(6, num_elements)
    sets: list[set[int]] = []
    for _ in range(num_sets):
        size = rng.randint(2, max(2, num_elements // 2))
        sets.append(set(rng.sample(range(num_elements), size)))
    depth_needed = 4
    for element in range(num_elements):
        while (
            sum(1 for members in sets if element in members) < depth_needed
        ):
            sets[rng.randrange(num_sets)].add(element)
    costs = [1.0 + rng.random() * 3.0 for _ in range(num_sets)]
    counts: dict[int, int] = {}
    stream: list[tuple[int, int]] = []
    t = 0
    while len(stream) < arrivals:
        element = rng.randrange(num_elements)
        if counts.get(element, 0) >= depth_needed:
            continue
        counts[element] = counts.get(element, 0) + 1
        stream.append((element, t))
        t += 1
    base = non_leasing_instance(
        num_elements,
        sets,
        costs,
        horizon=t + 1,
        demands=[(e, tt, 1) for e, tt in stream],
    )
    return RepetitionsInstance(base=base, stream=tuple(stream))


def repetitions_to_multicover(
    demands: list[tuple[int, int]]
) -> list[MulticoverDemand]:
    """Rewrite a repeated-arrival stream as multicover demands.

    The ``r``-th arrival of an element becomes a demand with coverage
    ``r``: serving it requires ``r`` distinct active sets, which is
    exactly the repetitions requirement when arrivals share a time window.
    Used by equivalence tests between the two formulations.
    """
    counts: dict[int, int] = {}
    rewritten: list[MulticoverDemand] = []
    for element, arrival in demands:
        counts[element] = counts.get(element, 0) + 1
        rewritten.append(
            MulticoverDemand(element, arrival, counts[element])
        )
    return rewritten
