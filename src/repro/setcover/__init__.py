"""Set multicover leasing (thesis Chapter 3).

The first online algorithms for the set cover leasing family.  The paper
objects each type models, and the claim its benchmark measures:

* :class:`SetMulticoverLeasingInstance` / :class:`SetSystem` /
  :class:`MulticoverDemand` — the Section 3.2 model: elements arrive
  over time and must be covered by ``p`` *distinct* sets, each holding a
  lease active at the arrival.  :class:`OnlineSetMulticoverLeasing` is
  the randomized Algorithm 3+4; benchmark E6 (scenarios
  ``setcover-e06-*``) measures its ``O(log(delta K) log n)`` competitive
  ratio (Theorem 3.3) against the exact Figure 3.2 ILP.
* :func:`non_leasing_instance` / :func:`random_classic_multicover_instance`
  — the ``K = 1`` infinite-lease degeneration: the leasing algorithm
  becomes the optimal ``O(log delta log n)`` classical online set
  multicover algorithm; benchmark E7 (``setcover-e07-*``) measures
  Corollary 3.4.
* :class:`OnlineSetCoverWithRepetitions` / :class:`RepetitionsInstance`
  — Alon et al.'s repetitions problem (every repeated arrival needs a
  fresh set) via widened threshold draws; benchmark E8
  (``setcover-e08-*``) measures the Corollary 3.5
  ``O(log delta log(delta n))`` improvement against the multicover
  rewriting's ILP.

Offline greedy/ILP baselines and seeded instance generators round out
the package; every benchmark runs through the ``repro.engine``
scenario/replay substrate (see ``repro.engine.paper``).
"""

from .fractional import candidate_sum, fractional_cost, raise_fractions
from .generators import random_instance, random_set_system
from .model import (
    MulticoverDemand,
    SetMulticoverLeasingInstance,
    SetSystem,
)
from .multicover import OnlineSetMulticoverLeasing
from .offline import GreedySolution, greedy, optimal_leases, optimum
from .special_cases import (
    OnlineSetCoverLeasing,
    OnlineSetCoverWithRepetitions,
    RepetitionsInstance,
    non_leasing_instance,
    random_classic_multicover_instance,
    random_repetitions_instance,
    repetitions_to_multicover,
)

__all__ = [
    "GreedySolution",
    "MulticoverDemand",
    "OnlineSetCoverLeasing",
    "OnlineSetCoverWithRepetitions",
    "OnlineSetMulticoverLeasing",
    "RepetitionsInstance",
    "SetMulticoverLeasingInstance",
    "SetSystem",
    "candidate_sum",
    "fractional_cost",
    "greedy",
    "non_leasing_instance",
    "optimal_leases",
    "optimum",
    "raise_fractions",
    "random_classic_multicover_instance",
    "random_instance",
    "random_repetitions_instance",
    "random_set_system",
    "repetitions_to_multicover",
]
