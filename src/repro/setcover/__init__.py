"""Set multicover leasing (thesis Chapter 3).

The first online algorithms for the set cover leasing family: the
randomized ``O(log(delta K) log n)`` algorithm for SetMulticoverLeasing
(Theorem 3.3) plus its special cases — SetCoverLeasing,
OnlineSetMulticover (Corollary 3.4) and OnlineSetCoverWithRepetitions
(Corollary 3.5) — together with offline greedy/ILP baselines and random
instance generators.
"""

from .fractional import candidate_sum, fractional_cost, raise_fractions
from .generators import random_instance, random_set_system
from .model import (
    MulticoverDemand,
    SetMulticoverLeasingInstance,
    SetSystem,
)
from .multicover import OnlineSetMulticoverLeasing
from .offline import GreedySolution, greedy, optimal_leases, optimum
from .special_cases import (
    OnlineSetCoverLeasing,
    OnlineSetCoverWithRepetitions,
    non_leasing_instance,
    repetitions_to_multicover,
)

__all__ = [
    "GreedySolution",
    "MulticoverDemand",
    "OnlineSetCoverLeasing",
    "OnlineSetCoverWithRepetitions",
    "OnlineSetMulticoverLeasing",
    "SetMulticoverLeasingInstance",
    "SetSystem",
    "candidate_sum",
    "fractional_cost",
    "greedy",
    "non_leasing_instance",
    "optimal_leases",
    "optimum",
    "raise_fractions",
    "random_instance",
    "random_set_system",
    "repetitions_to_multicover",
]
