"""Set multicover leasing model (thesis Section 3.2, Figure 3.2).

Elements arrive over time, each with a coverage requirement ``p``; they
must be covered by ``p`` *different* sets that contain them and hold an
active lease at the arrival time.  The model couples three ingredients:

* a :class:`SetSystem` — the universe, the family of sets, and the
  per-set-per-lease-type costs ``c_{Sk}``;
* a :class:`~repro.core.lease.LeaseSchedule` — the ``K`` lease types;
* a demand sequence of :class:`MulticoverDemand` values ``(j, t, p)``.

``SetMulticoverLeasing`` generalises ``SetCoverLeasing`` (``p = 1``),
``OnlineSetMulticover`` (``K = 1``, infinite lease) and
``OnlineSetCoverWithRepetitions`` — see :mod:`repro.setcover.special_cases`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import require, require_nonnegative_int, require_positive_int
from ..core.lease import Lease, LeaseSchedule
from ..lp.model import CoveringProgram


class SetSystem:
    """A weighted set system with per-lease-type costs.

    Args:
        num_elements: universe size ``n``; elements are ``0..n-1``.
        sets: the family ``F`` as iterables of element ids.
        lease_costs: ``m x K`` matrix, ``lease_costs[s][k] = c_{Sk}``.
    """

    def __init__(
        self,
        num_elements: int,
        sets: list,
        lease_costs: list[list[float]],
    ):
        require_positive_int(num_elements, "num_elements")
        require(len(sets) > 0, "a set system needs at least one set")
        require(
            len(lease_costs) == len(sets),
            f"lease_costs has {len(lease_costs)} rows for {len(sets)} sets",
        )
        num_types = len(lease_costs[0])
        frozen_sets: list[frozenset[int]] = []
        for index, members in enumerate(sets):
            frozen = frozenset(members)
            require(len(frozen) > 0, f"set {index} is empty")
            for element in frozen:
                require(
                    isinstance(element, int) and 0 <= element < num_elements,
                    f"set {index} contains invalid element {element!r}",
                )
            frozen_sets.append(frozen)
        costs: list[tuple[float, ...]] = []
        for index, row in enumerate(lease_costs):
            require(
                len(row) == num_types,
                f"lease_costs row {index} has {len(row)} entries, "
                f"expected {num_types}",
            )
            for cost in row:
                require(
                    float(cost) > 0, f"set {index} has non-positive cost {cost}"
                )
            costs.append(tuple(float(c) for c in row))

        self.num_elements = num_elements
        self.sets: tuple[frozenset[int], ...] = tuple(frozen_sets)
        self.lease_costs: tuple[tuple[float, ...], ...] = tuple(costs)
        self._containing: dict[int, tuple[int, ...]] = {}
        by_element: dict[int, list[int]] = {}
        for set_index, members in enumerate(self.sets):
            for element in members:
                by_element.setdefault(element, []).append(set_index)
        self._containing = {
            element: tuple(indices) for element, indices in by_element.items()
        }

    @property
    def num_sets(self) -> int:
        """Family size ``m``."""
        return len(self.sets)

    @property
    def num_types(self) -> int:
        """Number of lease types ``K`` the cost matrix was built for."""
        return len(self.lease_costs[0])

    @property
    def delta(self) -> int:
        """Maximum number of sets any element belongs to (the thesis delta)."""
        return max(
            (len(indices) for indices in self._containing.values()), default=0
        )

    @property
    def max_set_size(self) -> int:
        """Maximum set cardinality (the thesis Delta)."""
        return max(len(members) for members in self.sets)

    def sets_containing(self, element: int) -> tuple[int, ...]:
        """Indices of sets containing ``element`` (possibly empty)."""
        return self._containing.get(element, ())

    def cost(self, set_index: int, type_index: int) -> float:
        """Lease cost ``c_{Sk}``."""
        return self.lease_costs[set_index][type_index]


@dataclass(frozen=True, slots=True)
class MulticoverDemand:
    """A demand ``(j, t)`` with coverage requirement ``p`` (thesis p_jt)."""

    element: int
    arrival: int
    coverage: int = 1

    def __post_init__(self) -> None:
        require_nonnegative_int(self.element, "element")
        require_nonnegative_int(self.arrival, "arrival")
        require_positive_int(self.coverage, "coverage")


@dataclass(frozen=True)
class SetMulticoverLeasingInstance:
    """A full instance: set system, lease schedule, demand sequence."""

    system: SetSystem
    schedule: LeaseSchedule
    demands: tuple[MulticoverDemand, ...]

    def __post_init__(self) -> None:
        require(
            self.system.num_types == self.schedule.num_types,
            f"cost matrix has {self.system.num_types} lease types but the "
            f"schedule has {self.schedule.num_types}",
        )
        previous = None
        for demand in self.demands:
            available = len(self.system.sets_containing(demand.element))
            require(
                available >= demand.coverage,
                f"element {demand.element} needs {demand.coverage} distinct "
                f"sets but belongs to only {available}",
            )
            if previous is not None:
                require(
                    demand.arrival >= previous,
                    "demands must be sorted by arrival",
                )
            previous = demand.arrival

    # ------------------------------------------------------------------
    # Candidates and verification
    # ------------------------------------------------------------------
    def candidate_lease(
        self, set_index: int, type_index: int, t: int
    ) -> Lease:
        """The aligned lease of ``(S, k)`` covering day ``t`` with cost c_{Sk}."""
        lease_type = self.schedule[type_index]
        return Lease(
            resource=set_index,
            type_index=type_index,
            start=lease_type.aligned_start(t),
            length=lease_type.length,
            cost=self.system.cost(set_index, type_index),
        )

    def candidates(self, element: int, t: int) -> list[Lease]:
        """All triples ``(S, k, window covering t)`` with ``element in S``.

        Size at most ``delta * K`` — the ``|Q|`` of Lemma 3.1.
        """
        return [
            self.candidate_lease(set_index, lease_type.index, t)
            for set_index in self.system.sets_containing(element)
            for lease_type in self.schedule
        ]

    def covering_sets(self, leases: list[Lease], demand: MulticoverDemand) -> set[int]:
        """Distinct sets containing the element with a lease active at arrival."""
        containing = set(self.system.sets_containing(demand.element))
        return {
            lease.resource
            for lease in leases
            if lease.resource in containing and lease.covers(demand.arrival)
        }

    def is_feasible_solution(self, leases: list[Lease]) -> bool:
        """Whether every demand is covered by enough distinct leased sets."""
        return all(
            len(self.covering_sets(leases, demand)) >= demand.coverage
            for demand in self.demands
        )

    def to_covering_program(self) -> CoveringProgram:
        """The Figure 3.2 ILP restricted to demand-relevant windows.

        Variables are candidate triples of some demand; each demand
        contributes one row ``sum x >= p``.  Note the ILP counts *triples*,
        exactly as Figure 3.2 does; the online verifier is stricter
        (distinct sets), so ratios measured against this optimum are
        conservative (never understated).
        """
        program = CoveringProgram()
        variable_of: dict[tuple[int, int, int], int] = {}
        for demand in self.demands:
            terms: dict[int, float] = {}
            for lease in self.candidates(demand.element, demand.arrival):
                if lease.key not in variable_of:
                    variable_of[lease.key] = program.add_variable(
                        cost=lease.cost,
                        name=(
                            f"x[S={lease.resource},k={lease.type_index},"
                            f"t={lease.start}]"
                        ),
                        payload=lease,
                    )
                terms[variable_of[lease.key]] = 1.0
            program.add_constraint(
                terms,
                rhs=float(demand.coverage),
                name=f"demand[e={demand.element},t={demand.arrival}]",
            )
        return program
