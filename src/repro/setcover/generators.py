"""Random set-system and instance generators for Chapter 3 experiments.

Generators control the parameters the competitive bound depends on —
``n`` (universe), ``m`` (family size), ``delta`` (memberships per
element), ``K`` and ``p`` — so the benchmark sweeps can vary one at a
time.  Feasibility is guaranteed by construction: every element belongs
to at least ``min_memberships`` sets, and demand coverages never exceed
an element's membership count.
"""

from __future__ import annotations

import random

from .._validation import require, require_positive_int
from ..core.lease import LeaseSchedule
from .model import (
    MulticoverDemand,
    SetMulticoverLeasingInstance,
    SetSystem,
)


def random_set_system(
    num_elements: int,
    num_sets: int,
    memberships: int,
    schedule: LeaseSchedule,
    rng: random.Random,
    cost_spread: float = 4.0,
) -> SetSystem:
    """A set system where each element joins ``memberships`` random sets.

    Per-set lease costs follow the schedule's cost profile scaled by a
    random per-set base in ``[1, cost_spread]``, preserving economies of
    scale across lease types within each set.
    """
    require_positive_int(num_elements, "num_elements")
    require_positive_int(num_sets, "num_sets")
    require_positive_int(memberships, "memberships")
    require(
        memberships <= num_sets,
        f"memberships {memberships} exceeds num_sets {num_sets}",
    )
    require(cost_spread >= 1.0, "cost_spread must be >= 1")

    members: list[set[int]] = [set() for _ in range(num_sets)]
    for element in range(num_elements):
        for set_index in rng.sample(range(num_sets), memberships):
            members[set_index].add(element)
    # Re-home elements of any empty set so validation passes.
    for set_index, chosen in enumerate(members):
        if not chosen:
            chosen.add(rng.randrange(num_elements))

    lease_costs = []
    for _ in range(num_sets):
        base = 1.0 + rng.random() * (cost_spread - 1.0)
        lease_costs.append(
            [base * lease_type.cost for lease_type in schedule]
        )
    return SetSystem(
        num_elements=num_elements,
        sets=[frozenset(chosen) for chosen in members],
        lease_costs=lease_costs,
    )


def random_instance(
    num_elements: int,
    num_sets: int,
    memberships: int,
    schedule: LeaseSchedule,
    horizon: int,
    num_demands: int,
    rng: random.Random,
    max_coverage: int = 1,
) -> SetMulticoverLeasingInstance:
    """A full random instance: system plus a sorted demand sequence.

    Coverage requirements are uniform in ``[1, min(max_coverage,
    memberships)]`` so every demand is feasible by construction.
    """
    require_positive_int(horizon, "horizon")
    require_positive_int(num_demands, "num_demands")
    system = random_set_system(
        num_elements, num_sets, memberships, schedule, rng
    )
    cap = min(max_coverage, memberships)
    demands = sorted(
        (
            MulticoverDemand(
                element=rng.randrange(num_elements),
                arrival=rng.randrange(horizon),
                coverage=rng.randint(1, max(1, cap)),
            )
            for _ in range(num_demands)
        ),
        key=lambda demand: demand.arrival,
    )
    return SetMulticoverLeasingInstance(
        system=system, schedule=schedule, demands=tuple(demands)
    )
