"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at API boundaries.  The subclasses mirror
the three ways a leasing computation can go wrong: the *model* is malformed
(:class:`ModelError`), the *demand sequence* cannot be served
(:class:`InfeasibleError`), or a *solver* could not complete
(:class:`SolverError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """A problem instance or lease schedule is malformed.

    Raised during construction/validation, e.g. a lease with non-positive
    length, a demand arriving at a negative time, or a multicover demand
    requesting more distinct sets than exist.
    """


class InfeasibleError(ReproError):
    """No feasible solution exists for the given demand sequence.

    Online algorithms raise this when a demand cannot be served by any
    infrastructure element (e.g. an element contained in no set), which is
    an instance bug rather than an algorithmic failure.
    """


class SolverError(ReproError):
    """An exact or LP solver failed to produce a solution.

    Raised when the optional scipy backend is unavailable and the
    pure-Python fallback exceeds its node budget, or when a solver reports
    an unexpected status.
    """
