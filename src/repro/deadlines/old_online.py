"""The deterministic primal-dual algorithm for OLD (thesis Section 5.3).

When a client ``(t, d)`` arrives:

* If it *intersects* an earlier client with a positive dual — the earlier
  client's deadline point ``t' + d'`` falls inside ``[t, t + d]`` — it is
  skipped: the Step-2 lease bought at that deadline point already (or will)
  serve it.

* Otherwise **Step 1** raises the client's dual until some candidate lease
  (a window intersecting ``[t, t + d]``) goes tight, then buys every tight
  lease *covering the arrival day* ``t`` (Proposition 5.1 guarantees one
  exists).  **Step 2** buys, for each lease type bought in Step 1, the
  corresponding window covering the deadline day ``t + d`` — the purchase
  that future intersecting clients rely on.

Theorem 5.3: O(K)-competitive on uniform OLD, O(K + d_max / l_min) on
non-uniform OLD, and Proposition 5.4 shows the analysis is tight
(see :mod:`repro.deadlines.tight_example`).
"""

from __future__ import annotations

from ..core.lease import Lease, LeaseSchedule
from ..core.store import LeaseStore
from .model import DeadlineClient, OLDInstance

_EPS = 1e-9


class OnlineLeasingWithDeadlines:
    """Deterministic primal-dual algorithm for OLD.

    Args:
        schedule: the lease types (interval model assumed, per Lemma 2.6).

    The algorithm expects at most one client per day (feed
    :meth:`OLDInstance.normalized` instances, or arbitrary streams — a
    same-day duplicate is simply processed in sequence and is either
    skipped or served at zero extra dual).
    """

    def __init__(self, schedule: LeaseSchedule):
        self.schedule = schedule
        self.store = LeaseStore()
        self._contribution: dict[tuple[int, int], float] = {}
        self._duals: dict[tuple[int, int], float] = {}
        self._positive_deadlines: list[tuple[int, int]] = []
        self.skipped = 0

    # ------------------------------------------------------------------
    # Online interface
    # ------------------------------------------------------------------
    def on_demand(self, client: DeadlineClient | tuple[int, int]) -> None:
        """Serve an arriving client ``(t, d)``."""
        if not isinstance(client, DeadlineClient):
            client = DeadlineClient(arrival=client[0], slack=client[1])
        t, deadline = client.arrival, client.deadline

        # Skip rule: an earlier positive-dual client whose deadline point
        # lies inside our interval guarantees coverage via its Step-2 lease.
        for earlier_arrival, earlier_deadline in self._positive_deadlines:
            if earlier_arrival < t and t <= earlier_deadline <= deadline:
                self.skipped += 1
                return

        candidates = self.schedule.windows_intersecting(t, deadline)
        slack_of = {
            candidate.key: candidate.cost
            - self._contribution.get(
                (candidate.type_index, candidate.start), 0.0
            )
            for candidate in candidates
        }
        raise_by = max(0.0, min(slack_of.values()))
        self._duals[(t, client.slack)] = raise_by
        if raise_by > _EPS:
            self._positive_deadlines.append((t, deadline))

        tight_types: set[int] = set()
        for candidate in candidates:
            key = (candidate.type_index, candidate.start)
            self._contribution[key] = (
                self._contribution.get(key, 0.0) + raise_by
            )
            if self._contribution[key] >= candidate.cost - _EPS:
                # Step 1 buys tight leases that cover the arrival day.
                if candidate.covers(t):
                    self.store.buy(candidate)
                    tight_types.add(candidate.type_index)

        # Step 2: mirror every Step-1 type at the deadline day.
        for type_index in tight_types:
            lease_type = self.schedule[type_index]
            self.store.buy(
                Lease(
                    resource=0,
                    type_index=type_index,
                    start=lease_type.aligned_start(deadline),
                    length=lease_type.length,
                    cost=lease_type.cost,
                )
            )

    def serves(self, client: DeadlineClient) -> bool:
        """Whether some purchased lease meets the client's interval."""
        return any(
            lease.intersects(client.arrival, client.deadline)
            for lease in self.store.leases
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        """Total cost of purchases so far."""
        return self.store.total_cost

    @property
    def leases(self) -> tuple[Lease, ...]:
        """Purchased leases in purchase order."""
        return self.store.leases

    @property
    def duals(self) -> dict[tuple[int, int], float]:
        """Dual values keyed by ``(arrival, slack)`` (skipped clients absent)."""
        return dict(self._duals)


def run_old(instance: OLDInstance) -> OnlineLeasingWithDeadlines:
    """Run the algorithm over a (normalized) instance's clients."""
    algorithm = OnlineLeasingWithDeadlines(instance.schedule)
    for client in instance.clients:
        algorithm.on_demand(client)
    return algorithm
