"""Leasing with flexible demands (thesis Chapter 5).

The deadline extension of the leasing model: OLD (online leasing with
deadlines, Theta(K + d_max/l_min)-competitive deterministic primal-dual,
Theorem 5.3) with its tight example (Proposition 5.4), plus SCLD (set
cover leasing with deadlines, Algorithm 5 / Theorem 5.7) whose ``d = 0``
case improves SetCoverLeasing to a time-independent factor
(Corollary 5.8).
"""

from .model import DeadlineClient, OLDInstance, make_old_instance
from .old_offline import (
    OfflineOLDSolution,
    optimal_dp,
    optimal_leases,
    optimum,
)
from .old_online import OnlineLeasingWithDeadlines, run_old
from .scld import (
    DeadlineElement,
    OnlineSCLD,
    SCLDInstance,
    scld_from_setcover,
)
from .tight_example import expected_ratio_lower_bound, tight_example

__all__ = [
    "DeadlineClient",
    "DeadlineElement",
    "OLDInstance",
    "OfflineOLDSolution",
    "OnlineLeasingWithDeadlines",
    "OnlineSCLD",
    "SCLDInstance",
    "expected_ratio_lower_bound",
    "make_old_instance",
    "optimal_dp",
    "optimal_leases",
    "optimum",
    "run_old",
    "scld_from_setcover",
    "tight_example",
]
