"""Leasing with flexible demands (thesis Chapter 5).

The deadline extension of the leasing model.  The paper objects each
type models, and the claim its benchmark measures:

* :class:`OLDInstance` / :class:`DeadlineClient` — online leasing with
  deadlines: clients ``(t, d)`` must be served by a lease intersecting
  ``[t, t + d]``.  :class:`OnlineLeasingWithDeadlines` (:func:`run_old`)
  is the deterministic primal-dual Algorithm of Section 5.3; benchmark
  E10 (scenarios ``deadline-e10-*``) measures its ``O(K)`` uniform /
  ``O(K + d_max/l_min)`` non-uniform ratios (Theorem 5.3) against the
  exact DP, and :func:`tight_example` materialises the Figure 5.3
  construction whose measured ratio benchmark E11 (``deadline-e11-*``)
  matches to the designed ``Omega(d_max/l_min)`` floor
  (Proposition 5.4).
* :class:`SCLDInstance` / :class:`DeadlineElement` — set cover leasing
  with deadlines.  :class:`OnlineSCLD` is the randomized Algorithm 5;
  benchmark E12 (``deadline-e12-*``) measures the
  ``O(log(m (K + d_max/l_min)) log l_max)`` ratio (Theorem 5.7) against
  the Figure 5.4 ILP, and benchmark E13 (``deadline-e13-*``) holds the
  system fixed while the horizon grows to exhibit the time-independent
  factor of Corollary 5.8.

Exact DP/ILP baselines and the seeded instance builders
(:func:`random_scld_instance`, :func:`periodic_scld_instance`) feed the
``repro.engine`` scenario/replay substrate (see ``repro.engine.paper``).
"""

from .model import DeadlineClient, OLDInstance, make_old_instance
from .old_offline import (
    OfflineOLDSolution,
    optimal_dp,
    optimal_leases,
    optimum,
)
from .old_online import OnlineLeasingWithDeadlines, run_old
from .scld import (
    DeadlineElement,
    OnlineSCLD,
    SCLDInstance,
    periodic_scld_instance,
    random_scld_instance,
    scld_from_setcover,
)
from .tight_example import expected_ratio_lower_bound, tight_example

__all__ = [
    "DeadlineClient",
    "DeadlineElement",
    "OLDInstance",
    "OfflineOLDSolution",
    "OnlineLeasingWithDeadlines",
    "OnlineSCLD",
    "SCLDInstance",
    "expected_ratio_lower_bound",
    "make_old_instance",
    "optimal_dp",
    "optimal_leases",
    "optimum",
    "periodic_scld_instance",
    "random_scld_instance",
    "run_old",
    "scld_from_setcover",
    "tight_example",
]
