"""Online leasing with deadlines — the OLD model (thesis Section 5.2).

A client ``(t, d)`` arrives on day ``t`` and may be served on *any* day of
its closed interval ``[t, t + d]``; serving means holding a lease that
covers at least one day of the interval.  The model strictly generalises
the parking permit problem (``d = 0`` everywhere) and splits into
*uniform* OLD (all interval lengths equal — O(K)-competitive) and
*non-uniform* OLD (Theta(K + d_max / l_min), Theorem 5.3).

The thesis observes that only the client with the earliest deadline
matters among same-day arrivals; :meth:`OLDInstance.normalized` performs
that reduction so algorithms may assume at most one client per day.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import require, require_nonnegative_int
from ..core.lease import Lease, LeaseSchedule
from ..lp.model import CoveringProgram


@dataclass(frozen=True, slots=True)
class DeadlineClient:
    """A client ``(t, d)``: arrival day ``t``, slack ``d``, interval [t, t+d]."""

    arrival: int
    slack: int

    def __post_init__(self) -> None:
        require_nonnegative_int(self.arrival, "arrival")
        require_nonnegative_int(self.slack, "slack")

    @property
    def deadline(self) -> int:
        """Last admissible service day, ``t + d``."""
        return self.arrival + self.slack

    def interval(self) -> tuple[int, int]:
        """The closed service interval ``[t, t + d]``."""
        return (self.arrival, self.deadline)


@dataclass(frozen=True)
class OLDInstance:
    """An OLD instance: lease schedule plus deadline clients in arrival order."""

    schedule: LeaseSchedule
    clients: tuple[DeadlineClient, ...]

    def __post_init__(self) -> None:
        previous = None
        for client in self.clients:
            if previous is not None:
                require(
                    client.arrival >= previous,
                    "clients must be sorted by arrival",
                )
            previous = client.arrival

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def dmax(self) -> int:
        """Longest client slack (the thesis ``d_max``; 0 when empty)."""
        return max((client.slack for client in self.clients), default=0)

    @property
    def dmin(self) -> int:
        """Shortest client slack."""
        return min((client.slack for client in self.clients), default=0)

    def is_uniform(self) -> bool:
        """Whether all clients share one interval length (uniform OLD)."""
        slacks = {client.slack for client in self.clients}
        return len(slacks) <= 1

    def normalized(self) -> "OLDInstance":
        """At most one client per day: keep the earliest deadline per day.

        The kept interval ``[t, t + d_min]`` is contained in every dropped
        same-day interval, so any lease serving the kept client also
        serves the dropped ones — the reduction the thesis applies without
        loss of generality in Section 5.2.
        """
        best: dict[int, int] = {}
        for client in self.clients:
            current = best.get(client.arrival)
            if current is None or client.slack < current:
                best[client.arrival] = client.slack
        clients = tuple(
            DeadlineClient(arrival=t, slack=best[t]) for t in sorted(best)
        )
        return OLDInstance(schedule=self.schedule, clients=clients)

    # ------------------------------------------------------------------
    # Candidates and verification
    # ------------------------------------------------------------------
    def candidates(self, client: DeadlineClient) -> list[Lease]:
        """All windows intersecting the client's interval (its candidates)."""
        return self.schedule.windows_intersecting(
            client.arrival, client.deadline
        )

    def is_feasible_solution(self, leases: list[Lease]) -> bool:
        """Whether every client's interval meets some purchased lease."""
        return all(
            any(
                lease.intersects(client.arrival, client.deadline)
                for lease in leases
            )
            for client in self.clients
        )

    def to_covering_program(self) -> CoveringProgram:
        """The Figure 5.2 ILP over demand-relevant windows."""
        program = CoveringProgram()
        variable_of: dict[tuple[int, int], int] = {}
        for client in self.clients:
            terms: dict[int, float] = {}
            for lease in self.candidates(client):
                key = (lease.type_index, lease.start)
                if key not in variable_of:
                    variable_of[key] = program.add_variable(
                        cost=lease.cost,
                        name=f"x[k={lease.type_index},t={lease.start}]",
                        payload=lease,
                    )
                terms[variable_of[key]] = 1.0
            program.add_constraint(
                terms,
                rhs=1.0,
                name=f"client[t={client.arrival},d={client.slack}]",
            )
        return program


def make_old_instance(
    schedule: LeaseSchedule, clients: list[tuple[int, int]]
) -> OLDInstance:
    """Build an OLD instance from ``(arrival, slack)`` pairs (sorted here)."""
    return OLDInstance(
        schedule=schedule,
        clients=tuple(
            DeadlineClient(arrival=t, slack=d)
            for t, d in sorted(clients)
        ),
    )
