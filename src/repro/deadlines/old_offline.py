"""Exact offline baselines for OLD.

The Figure 5.2 ILP is a covering program over demand-relevant windows, so
:func:`optimum` reuses the shared solver stack.  :func:`optimal_dp` is an
independent ``O(n * (K + d_max/l_min))`` exact dynamic program used to
cross-check the ILP — two independent exact solvers guard each other in
the property tests.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from functools import lru_cache

from ..core.lease import Lease
from ..core.results import OptBounds
from ..lp.solver import opt_bounds, solve_ilp
from .model import OLDInstance


@dataclass(frozen=True, slots=True)
class OfflineOLDSolution:
    """An exact offline solution for an OLD instance."""

    cost: float
    leases: tuple[Lease, ...]
    method: str


def optimum(
    instance: OLDInstance, exact_variable_limit: int = 4_000
) -> OptBounds:
    """Bracket (or exactly solve) the Figure 5.2 ILP optimum."""
    return opt_bounds(
        instance.to_covering_program(),
        exact_variable_limit=exact_variable_limit,
    )


def optimal_leases(instance: OLDInstance) -> OfflineOLDSolution:
    """Exact optimum with the selected leases (small instances only)."""
    program = instance.to_covering_program()
    solution = solve_ilp(program)
    leases = tuple(program.selected_payloads(list(solution.x)))
    return OfflineOLDSolution(
        cost=solution.value, leases=leases, method=solution.method
    )


def optimal_dp(instance: OLDInstance) -> float:
    """Exact optimum by dynamic programming over arrival-sorted clients.

    Correctness: consider the unserved client ``c*`` with the earliest
    deadline.  Any feasible solution buys some window ``w`` intersecting
    ``[c*.arrival, c*.deadline]``.  No other unserved client can lie
    entirely to the left of ``w`` (its deadline would be below
    ``w.start <= c*.deadline``, contradicting ``c*``'s minimality), so
    after buying ``w`` the unserved clients are exactly those with
    ``arrival >= w.end`` — an arrival-order suffix.  The state is
    therefore the suffix start index; transitions enumerate the candidate
    windows of the suffix's earliest-deadline client.
    """
    clients = sorted(
        instance.clients,
        key=lambda client: (client.arrival, client.deadline),
    )
    n = len(clients)
    if n == 0:
        return 0.0
    arrivals = [client.arrival for client in clients]
    schedule = instance.schedule

    # suffix_min_deadline_index[i]: index of the earliest-deadline client
    # among clients[i:].
    suffix_best = [0] * n
    best_index = n - 1
    for i in range(n - 1, -1, -1):
        if clients[i].deadline <= clients[best_index].deadline:
            best_index = i
        suffix_best[i] = best_index

    @lru_cache(maxsize=None)
    def best(start_index: int) -> float:
        if start_index >= n:
            return 0.0
        target = clients[suffix_best[start_index]]
        answer = float("inf")
        for lease in schedule.windows_intersecting(
            target.arrival, target.deadline
        ):
            next_index = bisect.bisect_left(arrivals, lease.end, lo=start_index)
            answer = min(answer, lease.cost + best(next_index))
        return answer

    return best(0)
