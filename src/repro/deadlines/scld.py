"""Set cover leasing with deadlines — SCLD (thesis Section 5.5, Alg. 5).

Elements arrive with deadlines and must be covered by a containing set
holding a lease that intersects the element's interval ``[t, t + d]``.
Algorithm 5 runs the shared fractional increment over the candidate
triples, then rounds: a triple is leased when its fraction exceeds its
threshold ``mu`` — the minimum of ``2 ceil(log2 l_max)`` uniforms — and a
cheapest-candidate fallback keeps the solution feasible (Lemma 5.6 bounds
its expected contribution).

Theorem 5.7: ``O(log(m (K + d_max/l_min)) log l_max)``-competitive.
Corollary 5.8: with ``d = 0`` this *is* SetCoverLeasing with a
time-independent competitive factor — the E13 benchmark demonstrates the
independence empirically.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .._validation import require, require_nonnegative_int
from ..core.lease import Lease, LeaseSchedule
from ..core.store import LeaseStore
from ..errors import InfeasibleError
from ..lp.model import CoveringProgram
from ..setcover.fractional import fractional_cost, raise_fractions
from ..setcover.model import SetSystem
from ..workloads.rng import make_rng


@dataclass(frozen=True, slots=True)
class DeadlineElement:
    """An element arrival ``(e, t, d)``: serve within ``[t, t + d]``."""

    element: int
    arrival: int
    slack: int = 0

    def __post_init__(self) -> None:
        require_nonnegative_int(self.element, "element")
        require_nonnegative_int(self.arrival, "arrival")
        require_nonnegative_int(self.slack, "slack")

    @property
    def deadline(self) -> int:
        """Last admissible coverage day."""
        return self.arrival + self.slack


@dataclass(frozen=True)
class SCLDInstance:
    """An SCLD instance: set system, schedule, deadline element demands."""

    system: SetSystem
    schedule: LeaseSchedule
    demands: tuple[DeadlineElement, ...]

    def __post_init__(self) -> None:
        require(
            self.system.num_types == self.schedule.num_types,
            "cost matrix lease types must match the schedule",
        )
        previous = None
        for demand in self.demands:
            require(
                len(self.system.sets_containing(demand.element)) > 0,
                f"element {demand.element} belongs to no set",
            )
            if previous is not None:
                require(
                    demand.arrival >= previous,
                    "demands must be sorted by arrival",
                )
            previous = demand.arrival

    def candidates(self, demand: DeadlineElement) -> list[Lease]:
        """Triples ``(S, k, window)`` with ``e in S`` meeting ``[t, t+d]``.

        Size at most ``delta * (K + d_max/l_min + K)`` — the ``|F|`` bound
        of Lemma 5.5.
        """
        triples: list[Lease] = []
        for set_index in self.system.sets_containing(demand.element):
            for window in self.schedule.windows_intersecting(
                demand.arrival, demand.deadline
            ):
                triples.append(
                    Lease(
                        resource=set_index,
                        type_index=window.type_index,
                        start=window.start,
                        length=window.length,
                        cost=self.system.cost(set_index, window.type_index),
                    )
                )
        return triples

    def is_served(self, leases: list[Lease], demand: DeadlineElement) -> bool:
        """Whether a containing set's lease meets the demand interval."""
        containing = set(self.system.sets_containing(demand.element))
        return any(
            lease.resource in containing
            and lease.intersects(demand.arrival, demand.deadline)
            for lease in leases
        )

    def is_feasible_solution(self, leases: list[Lease]) -> bool:
        """Whether every demand is served."""
        return all(self.is_served(leases, demand) for demand in self.demands)

    def to_covering_program(self) -> CoveringProgram:
        """The Figure 5.4 ILP over demand-relevant triples."""
        program = CoveringProgram()
        variable_of: dict[tuple[int, int, int], int] = {}
        for demand in self.demands:
            terms: dict[int, float] = {}
            for lease in self.candidates(demand):
                if lease.key not in variable_of:
                    variable_of[lease.key] = program.add_variable(
                        cost=lease.cost,
                        name=(
                            f"x[S={lease.resource},k={lease.type_index},"
                            f"t={lease.start}]"
                        ),
                        payload=lease,
                    )
                terms[variable_of[lease.key]] = 1.0
            program.add_constraint(
                terms,
                rhs=1.0,
                name=(
                    f"demand[e={demand.element},t={demand.arrival},"
                    f"d={demand.slack}]"
                ),
            )
        return program


class OnlineSCLD:
    """Algorithm 5: randomized online algorithm for SCLD.

    Args:
        instance: supplies system/schedule; demands stream via
            :meth:`on_demand`.
        seed: seeds the threshold draws.
    """

    def __init__(self, instance: SCLDInstance, seed: int | None = 0):
        self.instance = instance
        self.system = instance.system
        self.schedule = instance.schedule
        self.store = LeaseStore()
        self.fractions: dict[tuple[int, int, int], float] = {}
        self._mu: dict[tuple[int, int, int], float] = {}
        self._rng: random.Random = make_rng(seed)
        self.num_threshold_draws = max(
            1, 2 * math.ceil(math.log2(max(2, self.schedule.lmax)))
        )
        self.fallback_purchases = 0
        self.increments = 0

    def _threshold(self, key: tuple[int, int, int]) -> float:
        if key not in self._mu:
            self._mu[key] = min(
                self._rng.random() for _ in range(self.num_threshold_draws)
            )
        return self._mu[key]

    def on_demand(self, demand: DeadlineElement | tuple) -> None:
        """Serve one arriving element with a deadline."""
        if not isinstance(demand, DeadlineElement):
            element, arrival, *rest = demand
            demand = DeadlineElement(
                element, arrival, rest[0] if rest else 0
            )
        candidates = self.instance.candidates(demand)
        if not candidates:
            raise InfeasibleError(
                f"element {demand.element} has no candidate triples"
            )
        self.increments += raise_fractions(
            self.fractions,
            [(lease.key, lease.cost) for lease in candidates],
        )
        for lease in candidates:
            fraction = self.fractions.get(lease.key, 0.0)
            if fraction > self._threshold(lease.key):
                self.store.buy(lease)
        if not self.instance.is_served(list(self.store.leases), demand):
            self.fallback_purchases += 1
            cheapest = min(candidates, key=lambda lease: lease.cost)
            self.store.buy(cheapest)

    @property
    def cost(self) -> float:
        """Total cost of purchases so far."""
        return self.store.total_cost

    @property
    def fractional_cost(self) -> float:
        """Cost of the online fractional solution (Lemma 5.5's quantity)."""
        return fractional_cost(
            self.fractions,
            cost_of=lambda key: self.system.cost(key[0], key[1]),
        )

    @property
    def leases(self) -> tuple[Lease, ...]:
        """Purchased leases in purchase order."""
        return self.store.leases


def scld_from_setcover(
    system: SetSystem,
    schedule: LeaseSchedule,
    demands: list[tuple[int, int]],
) -> SCLDInstance:
    """Corollary 5.8: SetCoverLeasing as SCLD with zero slack."""
    return SCLDInstance(
        system=system,
        schedule=schedule,
        demands=tuple(
            DeadlineElement(element=e, arrival=t, slack=0)
            for e, t in demands
        ),
    )


def random_scld_instance(
    schedule: LeaseSchedule,
    num_elements: int,
    num_sets: int,
    memberships: int,
    horizon: int,
    num_demands: int,
    max_slack: int,
    rng: random.Random,
) -> SCLDInstance:
    """The E12 workload: random deadline demands on a random set system.

    ``num_demands`` triples ``(element, arrival, slack)`` are drawn
    uniformly (slack in ``[0, max_slack]``) and sorted by arrival — the
    instances the Theorem 5.7 benchmark and the ``deadline-e12-*``
    scenarios replay.
    """
    from ..setcover.generators import random_set_system

    system = random_set_system(
        num_elements, num_sets, memberships, schedule, rng
    )
    raw = sorted(
        (
            (
                rng.randrange(num_elements),
                rng.randrange(horizon),
                rng.randint(0, max_slack),
            )
            for _ in range(num_demands)
        ),
        key=lambda d: d[1],
    )
    return SCLDInstance(
        system=system,
        schedule=schedule,
        demands=tuple(DeadlineElement(*d) for d in raw),
    )


def periodic_scld_instance(
    schedule: LeaseSchedule,
    num_elements: int,
    num_sets: int,
    memberships: int,
    horizon: int,
    rng: random.Random,
    every: int = 2,
) -> SCLDInstance:
    """The E13 workload: one zero-slack demand every ``every`` days.

    Holding the set system and ``l_max`` fixed while only the horizon
    grows isolates the Corollary 5.8 claim — the competitive factor is
    time-independent — which the ``deadline-e13-*`` scenarios measure.
    """
    from ..setcover.generators import random_set_system

    system = random_set_system(
        num_elements, num_sets, memberships, schedule, rng
    )
    demands = sorted(
        (
            (rng.randrange(num_elements), t, 0)
            for t in range(0, horizon, every)
        ),
        key=lambda d: d[1],
    )
    return SCLDInstance(
        system=system,
        schedule=schedule,
        demands=tuple(DeadlineElement(*d) for d in demands),
    )
