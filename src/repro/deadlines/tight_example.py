"""The tight example of thesis Proposition 5.4 / Figure 5.3.

Two lease types — short leases of length ``l_min`` and cost 1, one long
lease of length ``2^ceil(log2 d_max)`` and cost ``1 + eps`` — and a client
stream engineered so the primal-dual algorithm buys (nearly) every short
lease while the optimum buys the single long one:

* client ``(0, d_max)`` makes *all* short-lease constraints inside
  ``[0, d_max]`` tight simultaneously (each sees only this client's dual);
* clients ``((i-1) l_min, l_min)`` for ``i = 2..floor(d_max/l_min)`` then
  each arrive to an already-tight short lease, forcing a purchase at zero
  additional dual.

The measured ratio approaches ``floor(d_max / l_min) / (1 + eps)``,
demonstrating the ``Omega(d_max / l_min)`` term of Theorem 5.3 is real.
"""

from __future__ import annotations

from .._validation import require, require_positive_int
from ..core.interval_model import next_power_of_two
from ..core.lease import LeaseSchedule
from .model import DeadlineClient, OLDInstance


def tight_example(
    dmax: int, lmin: int = 1, epsilon: float = 0.01
) -> OLDInstance:
    """Build the Figure 5.3 instance.

    Args:
        dmax: the long client's slack; must exceed ``lmin`` so the two
            lease lengths differ.
        lmin: the short lease length.
        epsilon: cost premium of the long lease over the short one.
    """
    require_positive_int(dmax, "dmax")
    require_positive_int(lmin, "lmin")
    require(epsilon > 0, "epsilon must be positive")
    long_length = next_power_of_two(dmax + 1)
    require(
        long_length > lmin,
        f"dmax {dmax} too small: long lease length {long_length} must "
        f"exceed lmin {lmin}",
    )
    schedule = LeaseSchedule.from_pairs(
        [(lmin, 1.0), (long_length, 1.0 + epsilon)]
    )
    clients = [DeadlineClient(arrival=0, slack=dmax)]
    for i in range(2, dmax // lmin + 1):
        clients.append(DeadlineClient(arrival=(i - 1) * lmin, slack=lmin))
    return OLDInstance(schedule=schedule, clients=tuple(clients))


def expected_ratio_lower_bound(dmax: int, lmin: int = 1) -> float:
    """The ratio floor the construction is designed to force."""
    return (dmax // lmin) / 1.0
