"""Perf-trajectory harness: measure serving hot paths, persist, gate.

The serving layer's throughput used to live in one printed line of
``bench_p01``; nothing recorded it and nothing failed when it drifted.
This module makes the trajectory a first-class artifact:

* :func:`measure` runs one benchmark (``p01_broker``: raw broker event
  throughput on the P1 round-robin stream; ``p02_runner``: heavy-scenario
  replay, unsharded vs intra-scenario sharded; ``p03_serve``: closed-loop
  tenants served over a unix socket by :mod:`repro.serve`;
  ``p04_cluster``: the same closed-loop tenants against a
  :mod:`repro.cluster` fleet — router + worker processes — with the
  binary codec on the worker links; ``p05_obs``: the p03 serving cycle
  with :mod:`repro.obs` instrumentation off vs fully on — latency
  histograms, wire counters, JSONL trace spans — rating the
  observability overhead; ``p06_durable``: the p03 serving cycle with
  the :mod:`repro.durable` WAL off, batch-fsynced, and fsynced per
  append — pricing durability; ``p07_admin``: the p03 serving cycle
  bare vs with the :mod:`repro.admin` HTTP ops plane mounted and a
  background scraper polling ``/metrics`` + ``/leases`` at 4 Hz —
  pricing the admin plane under load; ``p08_flight``: the p03 serving
  cycle bare vs with the whole live-debugging layer lit at once —
  metrics, JSONL trace spans, the history sampling ring, the sampling
  profiler running, and an admin scraper additionally polling
  ``/metrics/history`` + ``/profile`` — pricing in-flight debugging;
  ``p09_direct``: the p04 clustered workload rated twice in the same
  run — data plane relayed through the router vs sent direct to the
  owning workers after a route handshake — pricing the router hop) at
  one of three sizes (``full`` —
  the committed trajectory numbers, ``smoke`` — CI-sized, ``unit`` —
  test-sized) and returns a JSON-ready record.
* ``BENCH_p01_broker.json`` / ``BENCH_p02_runner.json`` /
  ``BENCH_p03_serve.json`` / ``BENCH_p04_cluster.json`` /
  ``BENCH_p05_obs.json`` under
  ``benchmarks/`` hold the committed per-mode numbers plus the frozen
  ``baseline`` block (for p01/p02 the pre-optimization reference, for
  p03 the first served-throughput recording, for p04 the committed p03
  *single-process* rate the cluster is judged against, for p05 the
  first recorded uninstrumented rate), so ``current vs
  baseline`` is the headline trajectory and ``fresh vs committed`` is
  the regression gate.  On a multi-core machine p04 is additionally
  required to *beat* its baseline — horizontal scale-out must pay.
  p05 additionally gates the overhead itself: the instrumented rate
  must stay within 10% of the uninstrumented rate of the same run.
  p06 gates durability the same way: batch-fsynced serving must keep
  at least 80% of the WAL-off rate measured in the same run
  (per-append fsync is recorded, not gated — its cost is the disk's).
  p09 gates the topology split: on a multi-core machine the direct
  data plane must at least match the routed relay from the same run.
* :func:`check` compares a fresh record against the committed file with
  a relative tolerance (default 30%) and returns human-readable
  failures; CI runs it in smoke mode and fails on any.

Rates are wall-clock sensitive, so measurements take the best of
several rounds and the gate is deliberately loose; structure (events,
leases, byte-identical shard merges) is checked exactly.  Shard speedup
is only gated when the machine has more than one usable core — on a
single-core box fan-out cannot beat inline replay, and the record says
so (``cpus``) rather than pretending otherwise.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from ..core.lease import LeaseSchedule
from ..errors import ModelError
from .broker import LeaseBroker, replay_trace
from .events import Acquire, Event, Release, Tick
from .runner import render_report, replay_sharded, run_scenario
from .scenarios import make_broker_scenario, register

SCHEMA = "repro-bench/1"
BENCH_NAMES = (
    "p01_broker", "p02_runner", "p03_serve", "p04_cluster", "p05_obs",
    "p06_durable", "p07_admin", "p08_flight", "p09_direct",
)
MODES = ("full", "smoke", "unit")
DEFAULT_TOLERANCE = 0.30
#: Instrumented serving must keep at least this fraction of the
#: uninstrumented rate measured in the same p05 run.
OBS_OVERHEAD_FLOOR = 0.90
#: Batch-fsynced durable serving must keep at least this fraction of
#: the WAL-off rate measured in the same p06 run.
DURABLE_BATCH_FLOOR = 0.80
#: Serving with the admin plane mounted and scraped must keep at least
#: this fraction of the bare rate measured in the same p07 run.
ADMIN_OVERHEAD_FLOOR = 0.90
#: Serving with the whole live-debugging layer on — metrics, trace,
#: history ring, running profiler, scraped admin plane — must keep at
#: least this fraction of the bare rate measured in the same p08 run.
FLIGHT_OVERHEAD_FLOOR = 0.90

#: Committed trajectory files, relative to the repository root.
BENCH_FILES = {
    "p01_broker": "benchmarks/BENCH_p01_broker.json",
    "p02_runner": "benchmarks/BENCH_p02_runner.json",
    "p03_serve": "benchmarks/BENCH_p03_serve.json",
    "p04_cluster": "benchmarks/BENCH_p04_cluster.json",
    "p05_obs": "benchmarks/BENCH_p05_obs.json",
    "p06_durable": "benchmarks/BENCH_p06_durable.json",
    "p07_admin": "benchmarks/BENCH_p07_admin.json",
    "p08_flight": "benchmarks/BENCH_p08_flight.json",
    "p09_direct": "benchmarks/BENCH_p09_direct.json",
}

# P1 stream shape (mirrors bench_p01_broker_throughput).
_P01_TENANTS = 8
_P01_RESOURCES = 16
_P01_DAYS = {"full": 50_000, "smoke": 8_000, "unit": 400}
_P01_ROUNDS = {"full": 3, "smoke": 2, "unit": 1}

# P2 heavy-scenario shape.
_P02_HORIZON = {"full": 4096, "smoke": 1024, "unit": 128}
_P02_RESOURCES = {"full": 16, "smoke": 8, "unit": 4}
_P02_SHARDS = 4
_P02_SEED = 7

# P3 serving shape: closed-loop tenants over a unix socket.
_P03_HORIZON = {"full": 2048, "smoke": 512, "unit": 96}
_P03_RESOURCES = {"full": 16, "smoke": 8, "unit": 4}
_P03_SHARDS = {"full": 4, "smoke": 4, "unit": 2}
_P03_TENANTS_PER_RESOURCE = 2
_P03_SEED = 7

# P4 cluster shape: the P3 workload against a worker fleet (2 processes),
# binary codec on the router->worker links.
_P04_HORIZON = {"full": 2048, "smoke": 512, "unit": 96}
_P04_RESOURCES = {"full": 16, "smoke": 8, "unit": 4}
_P04_WORKERS = {"full": 2, "smoke": 2, "unit": 2}
_P04_SHARDS_PER_WORKER = {"full": 2, "smoke": 2, "unit": 1}
_P04_TENANTS_PER_RESOURCE = 2
_P04_SEED = 7

# P5 observability-overhead shape: the P3 serving cycle, rated with the
# instrumentation off and fully on.  Best-of-rounds per arm because the
# quantity of interest is a *ratio* of two wall-clock rates.
_P05_HORIZON = {"full": 2048, "smoke": 512, "unit": 96}
_P05_RESOURCES = {"full": 16, "smoke": 8, "unit": 4}
_P05_SHARDS = {"full": 4, "smoke": 4, "unit": 2}
_P05_ROUNDS = {"full": 3, "smoke": 6, "unit": 2}
_P05_TENANTS_PER_RESOURCE = 2
_P05_SEED = 7

# P6 durability shape: the P3 serving cycle with the WAL off, batched
# fsync, and per-append fsync, interleaved.  Every durable arm gets a
# FRESH WAL directory each round — reusing one would recover the prior
# round's state on startup and replay on top of it.
_P06_HORIZON = {"full": 2048, "smoke": 512, "unit": 96}
_P06_RESOURCES = {"full": 16, "smoke": 8, "unit": 4}
_P06_SHARDS = {"full": 4, "smoke": 4, "unit": 2}
_P06_ROUNDS = {"full": 3, "smoke": 6, "unit": 2}
_P06_TENANTS_PER_RESOURCE = 2
_P06_SEED = 7

# P7 admin-plane shape: the P3 serving cycle bare vs with the HTTP ops
# plane mounted and a background scraper polling it at 4 Hz.
_P07_HORIZON = {"full": 2048, "smoke": 512, "unit": 96}
_P07_RESOURCES = {"full": 16, "smoke": 8, "unit": 4}
_P07_SHARDS = {"full": 4, "smoke": 4, "unit": 2}
_P07_ROUNDS = {"full": 3, "smoke": 6, "unit": 2}
_P07_TENANTS_PER_RESOURCE = 2
_P07_SEED = 7
_P07_POLL_HZ = 4.0

# P8 flight shape: the P3 serving cycle bare vs with the whole
# live-debugging layer lit at once — metrics + trace spans + history
# sampling + a running profiler + an admin scraper that also pulls the
# history and profiler endpoints.
_P08_HORIZON = {"full": 2048, "smoke": 512, "unit": 96}
_P08_RESOURCES = {"full": 16, "smoke": 8, "unit": 4}
_P08_SHARDS = {"full": 4, "smoke": 4, "unit": 2}
#: More rounds than the other benches: the gated ratio compares two
#: best-of floors, and on a bursty shared box each arm needs enough
#: rounds to land at least one quiet window.
_P08_ROUNDS = {"full": 9, "smoke": 12, "unit": 6}
_P08_TENANTS_PER_RESOURCE = 2
_P08_SEED = 7
_P08_POLL_HZ = 4.0
#: Sub-second so even CI-sized drives collect several ring samples; the
#: unit drive finishes in tens of milliseconds, so it samples faster
#: still to light the history layer at all.
_P08_HISTORY_INTERVAL = {"full": 0.05, "smoke": 0.05, "unit": 0.01}
_P08_POLL_PATHS = (
    "/metrics",
    "/leases",
    "/metrics/history?window=30",
    "/profile?seconds=0.05",
)

# P9 topology shape: the P4 clustered workload, rated twice in the same
# run — data plane relayed through the router vs direct to the owning
# workers after a route handshake.  Arms interleave round by round
# because the gated quantity is a ratio of two wall clocks.
_P09_HORIZON = {"full": 2048, "smoke": 512, "unit": 96}
_P09_RESOURCES = {"full": 16, "smoke": 8, "unit": 4}
_P09_WORKERS = {"full": 2, "smoke": 2, "unit": 2}
_P09_SHARDS_PER_WORKER = {"full": 2, "smoke": 2, "unit": 1}
_P09_ROUNDS = {"full": 3, "smoke": 2, "unit": 1}
_P09_TENANTS_PER_RESOURCE = 2
_P09_SEED = 7


def _require_mode(mode: str) -> None:
    if mode not in MODES:
        raise ModelError(f"unknown mode {mode!r}; known: {', '.join(MODES)}")


def usable_cpus() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _environment() -> dict:
    return {
        "python": platform.python_version(),
        "cpus": usable_cpus(),
    }


# ----------------------------------------------------------------------
# P1: broker event throughput
# ----------------------------------------------------------------------
def p01_trace(num_days: int) -> list[Event]:
    """The P1 stream: each day releases yesterday's grant, acquires today's.

    Round-robin over tenants and resources — the complexity-guard shape
    ``bench_p01`` has always replayed, parameterised by length.
    """
    events: list[Event] = [Tick(time=0)]
    for day in range(num_days):
        if day:
            events.append(
                Release(
                    time=day,
                    tenant=f"tenant-{(day - 1) % _P01_TENANTS}",
                    resource=(day - 1) % _P01_RESOURCES,
                )
            )
        events.append(
            Acquire(
                time=day,
                tenant=f"tenant-{day % _P01_TENANTS}",
                resource=day % _P01_RESOURCES,
            )
        )
    return events


def measure_p01(mode: str = "smoke") -> dict:
    """Broker throughput on the P1 stream; best of N replay rounds."""
    _require_mode(mode)
    events = p01_trace(_P01_DAYS[mode])
    schedule = LeaseSchedule.power_of_two(4, cost_growth=1.7)
    best = None
    broker = None
    for _ in range(_P01_ROUNDS[mode]):
        broker = LeaseBroker(schedule)
        start = time.perf_counter()
        replay_trace(broker, events)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    leases = len(broker.leases)
    return {
        "schema": SCHEMA,
        "bench": "p01_broker",
        "mode": mode,
        "params": {
            "num_days": _P01_DAYS[mode],
            "num_tenants": _P01_TENANTS,
            "num_resources": _P01_RESOURCES,
            "rounds": _P01_ROUNDS[mode],
        },
        "metrics": {
            "events": len(events),
            "elapsed_sec": round(best, 4),
            "events_per_sec": round(len(events) / best),
            "leases": leases,
            "leases_per_sec": round(leases / best),
            "cost": broker.cost,
        },
        "env": _environment(),
    }


# ----------------------------------------------------------------------
# P2: heavy-scenario replay, unsharded vs sharded
# ----------------------------------------------------------------------
def _heavy_scenario(mode: str):
    return register(
        make_broker_scenario(
            "markov",
            name=f"perf-broker-heavy-{mode}",
            horizon=_P02_HORIZON[mode],
            num_resources=_P02_RESOURCES[mode],
            tenants_per_resource=2,
            hold=3,
            tick_every=64,
        ),
        replace=True,  # harness runs are re-entrant
    )


def measure_p02(mode: str = "smoke") -> dict:
    """One heavy scenario end to end: inline, then sharded over a pool."""
    _require_mode(mode)
    scenario = _heavy_scenario(mode)
    start = time.perf_counter()
    unsharded = run_scenario(scenario.name, seed=_P02_SEED)
    unsharded_sec = time.perf_counter() - start
    start = time.perf_counter()
    sharded = replay_sharded(
        scenario.name, seed=_P02_SEED, shards=_P02_SHARDS, workers=_P02_SHARDS
    )
    sharded_sec = time.perf_counter() - start
    # replay_trace counted every handled event; no need to rebuild the
    # trace a third time just to measure it.
    events = unsharded.run.detail["broker_stats"]["events"]
    byte_identical = render_report([unsharded]) == render_report([sharded])
    return {
        "schema": SCHEMA,
        "bench": "p02_runner",
        "mode": mode,
        "params": {
            "scenario": scenario.name,
            "horizon": _P02_HORIZON[mode],
            "num_resources": _P02_RESOURCES[mode],
            "shards": _P02_SHARDS,
            "workers": _P02_SHARDS,
            "seed": _P02_SEED,
        },
        "metrics": {
            "events": events,
            "leases": len(unsharded.run.leases),
            "unsharded_sec": round(unsharded_sec, 4),
            "sharded_sec": round(sharded_sec, 4),
            "events_per_sec": round(events / unsharded_sec),
            "shard_speedup": round(unsharded_sec / sharded_sec, 3),
            "byte_identical": byte_identical,
            "verified": bool(unsharded.verified and sharded.verified),
        },
        "env": _environment(),
    }


# ----------------------------------------------------------------------
# P3: serving throughput (closed-loop tenants over a unix socket)
# ----------------------------------------------------------------------
def measure_p03(mode: str = "smoke") -> dict:
    """Served loadgen end to end: server + tenants + equality check.

    The measured seconds cover the whole serving cycle — starting the
    shard workers, dialing one pipelined unix-socket connection per
    tenant, the day-barriered closed-loop replay, and the final report
    fetch — because that cycle *is* the serving hot path.  The rate is
    server-applied events per second; ``report_equal`` asserts the
    served aggregate matched the inline replay of the merged trace, the
    same structural identity ``p02`` gates for shard merges.
    """
    _require_mode(mode)
    from ..serve.loadgen import (
        build_serve_instance,
        run_serve_instance,
        serve_once,
        verify_serve,
    )

    instance = build_serve_instance(
        "markov",
        _P03_HORIZON[mode],
        _P03_SEED,
        num_resources=_P03_RESOURCES[mode],
        tenants_per_resource=_P03_TENANTS_PER_RESOURCE,
        num_shards=_P03_SHARDS[mode],
    )
    # Time the serving cycle alone; the merge + inline-replay judgement
    # happens off the clock so the rate measures the server, not the
    # verifier.
    start = time.perf_counter()
    report = serve_once(instance)
    elapsed = time.perf_counter() - start
    result = run_serve_instance(instance, _P03_SEED, report=report)
    events = result.detail["broker_stats"]["events"]
    serve = result.detail["serve"]
    verified = verify_serve(instance, result).ok
    return {
        "schema": SCHEMA,
        "bench": "p03_serve",
        "mode": mode,
        "params": {
            "horizon": _P03_HORIZON[mode],
            "num_resources": _P03_RESOURCES[mode],
            "tenants_per_resource": _P03_TENANTS_PER_RESOURCE,
            "num_shards": _P03_SHARDS[mode],
            "seed": _P03_SEED,
        },
        "metrics": {
            "events": events,
            "requests": serve["requests"],
            "tenants": serve["tenants"],
            "leases": len(result.leases),
            "cost": result.cost,
            "elapsed_sec": round(elapsed, 4),
            "events_per_sec": round(events / elapsed),
            "report_equal": serve["report_equal"],
            "verified": verified,
        },
        "env": _environment(),
    }


# ----------------------------------------------------------------------
# P4: clustered serving throughput (router + worker processes)
# ----------------------------------------------------------------------
def measure_p04(mode: str = "smoke") -> dict:
    """Clustered loadgen end to end: worker fleet + router + tenants.

    The same closed-loop day-barriered workload as ``p03``, served by a
    :mod:`repro.cluster` fleet — real ``engine serve`` worker processes
    behind a :class:`~repro.cluster.router.ClusterRouter`, binary codec
    on the worker links.  The rated seconds are the *drive phase* alone
    (dial tenants, replay days, fetch the merged report); spawning the
    worker processes is operations, not serving, and stays off the
    clock.  ``report_equal`` asserts the clustered aggregate matched the
    inline replay of the merged trace — the same identity ``p03`` gates
    for the single-process server.
    """
    _require_mode(mode)
    from ..cluster.loadgen import (
        build_cluster_instance,
        cluster_once,
        run_cluster_instance,
        verify_cluster,
    )

    instance = build_cluster_instance(
        "markov",
        _P04_HORIZON[mode],
        _P04_SEED,
        num_resources=_P04_RESOURCES[mode],
        tenants_per_resource=_P04_TENANTS_PER_RESOURCE,
        num_workers=_P04_WORKERS[mode],
        shards_per_worker=_P04_SHARDS_PER_WORKER[mode],
    )
    report = cluster_once(instance)
    elapsed = report["drive_seconds"]
    result = run_cluster_instance(instance, _P04_SEED, report=report)
    events = result.detail["broker_stats"]["events"]
    cluster = result.detail["cluster"]
    verified = verify_cluster(instance, result).ok
    return {
        "schema": SCHEMA,
        "bench": "p04_cluster",
        "mode": mode,
        "params": {
            "horizon": _P04_HORIZON[mode],
            "num_resources": _P04_RESOURCES[mode],
            "tenants_per_resource": _P04_TENANTS_PER_RESOURCE,
            "num_workers": _P04_WORKERS[mode],
            "shards_per_worker": _P04_SHARDS_PER_WORKER[mode],
            "codec": cluster["codec"],
            "seed": _P04_SEED,
        },
        "metrics": {
            "events": events,
            "requests": cluster["requests"],
            "tenants": cluster["tenants"],
            "workers": cluster["workers"],
            "leases": len(result.leases),
            "cost": result.cost,
            "elapsed_sec": round(elapsed, 4),
            "events_per_sec": round(events / elapsed),
            "report_equal": cluster["report_equal"],
            "verified": verified,
        },
        "env": _environment(),
    }


# ----------------------------------------------------------------------
# P5: observability overhead (instrumented vs bare serving)
# ----------------------------------------------------------------------
def measure_p05(mode: str = "smoke") -> dict:
    """The p03 serving cycle: instrumentation off, metrics on, traced.

    Three arms per round, interleaved so machine drift hits them all:

    * ``off`` — the library default: null instruments, zero sampling.
    * ``on`` — a live server-side :class:`MetricsRegistry` (per-op
      latency histograms, wire-byte counters, session counters): the
      ``engine serve`` default.  This is the gated arm — the cost of
      leaving metrics on in production must stay within
      :data:`OBS_OVERHEAD_FLOOR` of bare serving.
    * ``traced`` — everything lit: metrics plus a :class:`TraceSink`
      writing one JSONL span per dispatched request plus client-side
      loadgen latency histograms.  Recorded for the trajectory, not
      gated: tracing is a debugging flag, priced here so the flag's
      cost is a number instead of folklore.

    Best-of-rounds per arm, because the headline number is a *ratio*
    of wall clocks and single rounds are noisy.  Two structural
    identities ride along: ``report_equal`` (every arm matches the
    inline replay — the p03 gate) and ``reports_identical`` (the
    instrumented aggregates are identical to the bare one —
    observation must not perturb behaviour).
    """
    _require_mode(mode)
    import tempfile

    from ..obs.metrics import MetricsRegistry
    from ..obs.trace import TraceSink
    from ..serve.loadgen import (
        build_serve_instance,
        run_serve_instance,
        serve_once,
        verify_serve,
    )

    instance = build_serve_instance(
        "markov",
        _P05_HORIZON[mode],
        _P05_SEED,
        num_resources=_P05_RESOURCES[mode],
        tenants_per_resource=_P05_TENANTS_PER_RESOURCE,
        num_shards=_P05_SHARDS[mode],
    )
    best = {"off": None, "on": None, "traced": None}
    reports: dict = {"off": None, "on": None, "traced": None}
    trace_spans = 0
    with tempfile.NamedTemporaryFile(
        prefix="p05-trace-", suffix=".jsonl"
    ) as handle:
        arms = {
            "off": lambda: serve_once(instance),
            "on": lambda: serve_once(instance, metrics=MetricsRegistry()),
            "traced": lambda: serve_once(
                instance,
                metrics=MetricsRegistry(),
                trace_sink=TraceSink(handle.name),
                latency_registry=MetricsRegistry(),
            ),
        }
        for _ in range(_P05_ROUNDS[mode]):
            for arm, run in arms.items():
                start = time.perf_counter()
                reports[arm] = run()
                elapsed = time.perf_counter() - start
                if best[arm] is None or elapsed < best[arm]:
                    best[arm] = elapsed
        handle.seek(0)
        trace_spans = sum(1 for _ in handle)
    results = {
        arm: run_serve_instance(instance, _P05_SEED, report=report)
        for arm, report in reports.items()
    }
    bare = results["off"]
    reports_identical = all(
        result.cost == bare.cost
        and result.leases == bare.leases
        and result.detail["broker_stats"] == bare.detail["broker_stats"]
        for result in results.values()
    )
    events = bare.detail["broker_stats"]["events"]
    report_equal = all(
        result.detail["serve"]["report_equal"]
        for result in results.values()
    )
    verified = all(
        verify_serve(instance, result).ok for result in results.values()
    )
    return {
        "schema": SCHEMA,
        "bench": "p05_obs",
        "mode": mode,
        "params": {
            "horizon": _P05_HORIZON[mode],
            "num_resources": _P05_RESOURCES[mode],
            "tenants_per_resource": _P05_TENANTS_PER_RESOURCE,
            "num_shards": _P05_SHARDS[mode],
            "rounds": _P05_ROUNDS[mode],
            "seed": _P05_SEED,
        },
        "metrics": {
            "events": events,
            "requests": bare.detail["serve"]["requests"],
            "tenants": bare.detail["serve"]["tenants"],
            "leases": len(bare.leases),
            "cost": bare.cost,
            "off_elapsed_sec": round(best["off"], 4),
            "on_elapsed_sec": round(best["on"], 4),
            "traced_elapsed_sec": round(best["traced"], 4),
            "off_events_per_sec": round(events / best["off"]),
            "on_events_per_sec": round(events / best["on"]),
            "traced_events_per_sec": round(events / best["traced"]),
            "overhead_ratio": round(best["on"] / best["off"], 4),
            "traced_ratio": round(best["traced"] / best["off"], 4),
            "trace_spans": trace_spans,
            "reports_identical": reports_identical,
            "report_equal": report_equal,
            "verified": verified,
        },
        "env": _environment(),
    }


# ----------------------------------------------------------------------
# P6: durability overhead (WAL off vs batch fsync vs per-append fsync)
# ----------------------------------------------------------------------
def measure_p06(mode: str = "smoke") -> dict:
    """The p03 serving cycle priced under :mod:`repro.durable`'s WAL.

    Three arms per round, interleaved so machine drift hits them all:

    * ``off`` — no WAL at all: the library default, the baseline.
    * ``batch`` — WAL on, fsync at dispatch-queue drain: the ``engine
      serve --wal-dir`` default.  This is the gated arm — batched
      durability must keep at least :data:`DURABLE_BATCH_FLOOR` of the
      WAL-off rate from the same run.
    * ``always`` — fsync per append: the only mode under which an
      *acked* op survives ``kill -9``, and the mode ``engine chaos``
      runs.  Recorded for the trajectory, not gated: its cost is the
      disk's sync latency, wildly machine-dependent, and pricing it is
      the point.

    Each durable arm runs against a fresh WAL directory every round (a
    reused directory would recover the previous round before serving).
    Best-of-rounds per arm, because the headline numbers are *ratios*
    of wall clocks.  Arms are rated on the *drive window* — tenants
    connecting through final report — not the whole cycle: startup
    recovery and the teardown snapshot are per-shard constants whose
    fsyncs would otherwise be billed as per-event throughput, punishing
    exactly the short runs CI uses.  The always arm still pays its
    per-append fsyncs inside that window, which is the cost being
    priced.  The p03 identities ride along: every arm's report
    must equal the inline replay, and the durable arms' aggregates must
    be identical to the WAL-off one — durability must not perturb
    behaviour.  ``wal_bytes`` records one round's total on-disk WAL
    footprint under fsync=always, log + snapshot files included.
    """
    _require_mode(mode)
    import shutil
    import tempfile

    from ..serve.loadgen import (
        build_serve_instance,
        run_serve_instance,
        serve_once,
        verify_serve,
    )

    instance = build_serve_instance(
        "markov",
        _P06_HORIZON[mode],
        _P06_SEED,
        num_resources=_P06_RESOURCES[mode],
        tenants_per_resource=_P06_TENANTS_PER_RESOURCE,
        num_shards=_P06_SHARDS[mode],
    )
    arms = ("off", "batch", "always")
    best: dict = {arm: None for arm in arms}
    reports: dict = {arm: None for arm in arms}
    wal_bytes = 0
    root = Path(tempfile.mkdtemp(prefix="p06-wal-"))
    try:
        for round_index in range(_P06_ROUNDS[mode]):
            for arm in arms:
                wal_dir = None
                if arm != "off":
                    wal_dir = str(root / f"{arm}-{round_index}")
                timings: dict = {}
                reports[arm] = serve_once(
                    instance,
                    timings=timings,
                    **({} if wal_dir is None
                       else {"wal_dir": wal_dir, "fsync": arm}),
                )
                elapsed = timings["drive"]
                if best[arm] is None or elapsed < best[arm]:
                    best[arm] = elapsed
        last_always = root / f"always-{_P06_ROUNDS[mode] - 1}"
        wal_bytes = sum(
            f.stat().st_size for f in last_always.rglob("*") if f.is_file()
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    results = {
        arm: run_serve_instance(instance, _P06_SEED, report=report)
        for arm, report in reports.items()
    }
    bare = results["off"]
    reports_identical = all(
        result.cost == bare.cost
        and result.leases == bare.leases
        and result.detail["broker_stats"] == bare.detail["broker_stats"]
        for result in results.values()
    )
    events = bare.detail["broker_stats"]["events"]
    report_equal = all(
        result.detail["serve"]["report_equal"]
        for result in results.values()
    )
    verified = all(
        verify_serve(instance, result).ok for result in results.values()
    )
    return {
        "schema": SCHEMA,
        "bench": "p06_durable",
        "mode": mode,
        "params": {
            "horizon": _P06_HORIZON[mode],
            "num_resources": _P06_RESOURCES[mode],
            "tenants_per_resource": _P06_TENANTS_PER_RESOURCE,
            "num_shards": _P06_SHARDS[mode],
            "rounds": _P06_ROUNDS[mode],
            "seed": _P06_SEED,
        },
        "metrics": {
            "events": events,
            "requests": bare.detail["serve"]["requests"],
            "tenants": bare.detail["serve"]["tenants"],
            "leases": len(bare.leases),
            "cost": bare.cost,
            "off_elapsed_sec": round(best["off"], 4),
            "batch_elapsed_sec": round(best["batch"], 4),
            "always_elapsed_sec": round(best["always"], 4),
            "off_events_per_sec": round(events / best["off"]),
            "batch_events_per_sec": round(events / best["batch"]),
            "always_events_per_sec": round(events / best["always"]),
            "batch_ratio": round(best["batch"] / best["off"], 4),
            "always_ratio": round(best["always"] / best["off"], 4),
            "wal_bytes": wal_bytes,
            "reports_identical": reports_identical,
            "report_equal": report_equal,
            "verified": verified,
        },
        "env": _environment(),
    }


# ----------------------------------------------------------------------
# P7: admin-plane overhead (bare vs mounted + actively scraped)
# ----------------------------------------------------------------------
def measure_p07(mode: str = "smoke") -> dict:
    """The p03 serving cycle bare vs with the ops plane scraped at 4 Hz.

    Two arms per round, interleaved so machine drift hits both:

    * ``bare`` — the p03 cycle untouched: no admin listener at all.
    * ``admin`` — an :class:`~repro.admin.AdminPlane` mounted on an
      ephemeral TCP port beside the lease socket, with a background
      scraper hitting ``GET /metrics`` and ``GET /leases`` at
      :data:`_P07_POLL_HZ` for the whole drive.  That is the realistic
      ops posture: every ``/metrics`` scrape runs the stats barrier
      across all shards and every ``/leases`` folds the live book, so
      this arm prices the plane *under observation*, not merely bound.

    This is the gated arm: it must keep at least
    :data:`ADMIN_OVERHEAD_FLOOR` of the bare rate from the same run — a
    ratio of two wall clocks on one box, machine-independent.  Best of
    rounds per arm, since the headline is a ratio.  The p03 identities
    ride along: both arms' aggregates must equal the inline replay, and
    the admin arm's aggregate must be identical to the bare one —
    being watched must not perturb behaviour.
    """
    _require_mode(mode)
    from ..serve.loadgen import (
        build_serve_instance,
        run_serve_instance,
        serve_once,
        verify_serve,
    )

    instance = build_serve_instance(
        "markov",
        _P07_HORIZON[mode],
        _P07_SEED,
        num_resources=_P07_RESOURCES[mode],
        tenants_per_resource=_P07_TENANTS_PER_RESOURCE,
        num_shards=_P07_SHARDS[mode],
    )
    arms = {
        "bare": lambda: serve_once(instance),
        "admin": lambda: serve_once(
            instance, admin=True, admin_poll_hz=_P07_POLL_HZ
        ),
    }
    best: dict = {arm: None for arm in arms}
    reports: dict = {arm: None for arm in arms}
    for _ in range(_P07_ROUNDS[mode]):
        for arm, run in arms.items():
            start = time.perf_counter()
            reports[arm] = run()
            elapsed = time.perf_counter() - start
            if best[arm] is None or elapsed < best[arm]:
                best[arm] = elapsed
    results = {
        arm: run_serve_instance(instance, _P07_SEED, report=report)
        for arm, report in reports.items()
    }
    bare = results["bare"]
    admin = results["admin"]
    reports_identical = (
        admin.cost == bare.cost
        and admin.leases == bare.leases
        and admin.detail["broker_stats"] == bare.detail["broker_stats"]
    )
    events = bare.detail["broker_stats"]["events"]
    report_equal = all(
        result.detail["serve"]["report_equal"]
        for result in results.values()
    )
    verified = all(
        verify_serve(instance, result).ok for result in results.values()
    )
    return {
        "schema": SCHEMA,
        "bench": "p07_admin",
        "mode": mode,
        "params": {
            "horizon": _P07_HORIZON[mode],
            "num_resources": _P07_RESOURCES[mode],
            "tenants_per_resource": _P07_TENANTS_PER_RESOURCE,
            "num_shards": _P07_SHARDS[mode],
            "rounds": _P07_ROUNDS[mode],
            "poll_hz": _P07_POLL_HZ,
            "seed": _P07_SEED,
        },
        "metrics": {
            "events": events,
            "requests": bare.detail["serve"]["requests"],
            "tenants": bare.detail["serve"]["tenants"],
            "leases": len(bare.leases),
            "cost": bare.cost,
            "bare_elapsed_sec": round(best["bare"], 4),
            "admin_elapsed_sec": round(best["admin"], 4),
            "bare_events_per_sec": round(events / best["bare"]),
            "admin_events_per_sec": round(events / best["admin"]),
            "admin_ratio": round(best["admin"] / best["bare"], 4),
            "reports_identical": reports_identical,
            "report_equal": report_equal,
            "verified": verified,
        },
        "env": _environment(),
    }


# ----------------------------------------------------------------------
# P8: live-debugging flight overhead (bare vs everything lit at once)
# ----------------------------------------------------------------------
def measure_p08(mode: str = "smoke") -> dict:
    """The p03 serving cycle bare vs under full live-debugging load.

    Two arms per round, interleaved so machine drift hits both:

    * ``off`` — the p03 cycle untouched: no instrumentation at all.
    * ``flight`` — the whole live-observability layer at once: a live
      :class:`MetricsRegistry`, a :class:`TraceSink` writing one JSONL
      span per dispatched request, a :class:`MetricsHistory` ring
      sampling the registry at :data:`_P08_HISTORY_INTERVAL`, a
      :class:`SamplingProfiler` running for the whole cycle, and an
      admin plane scraped at :data:`_P08_POLL_HZ` across
      :data:`_P08_POLL_PATHS` — including ``/metrics/history`` windowed
      queries and ``/profile`` captures.  The posture of an operator
      actively debugging a production incident, priced as one number.

    This is the gated arm: it must keep at least
    :data:`FLIGHT_OVERHEAD_FLOOR` of the bare rate from the same run —
    a ratio of two wall clocks on one box, machine-independent.  The
    gated ``flight_ratio`` is the best *head-to-head* round — each
    round times both arms back to back and the minimum per-round ratio
    is gated, so the multi-second contention drift a shared box injects
    cancels instead of landing on whichever arm drew the noisy slice.
    A real regression inflates every round's ratio and still trips the
    gate.  The p03
    identities ride along: both arms' aggregates must equal the inline
    replay, and the flight arm's aggregate must be identical to the
    bare one — debugging a live fleet must not change what it serves.
    ``history_samples`` / ``profile_samples`` / ``trace_spans`` record
    (from the last flight round) that every layer actually ran — a
    flight arm with nothing lit would gate a vacuous ratio.
    """
    _require_mode(mode)
    import tempfile

    from ..obs.history import MetricsHistory
    from ..obs.metrics import MetricsRegistry
    from ..obs.profile import SamplingProfiler
    from ..obs.trace import TraceSink
    from ..serve.loadgen import (
        build_serve_instance,
        run_serve_instance,
        serve_once,
        verify_serve,
    )

    instance = build_serve_instance(
        "markov",
        _P08_HORIZON[mode],
        _P08_SEED,
        num_resources=_P08_RESOURCES[mode],
        tenants_per_resource=_P08_TENANTS_PER_RESOURCE,
        num_shards=_P08_SHARDS[mode],
    )
    layer_counts = {"history_samples": 0, "profile_samples": 0}
    with tempfile.NamedTemporaryFile(
        prefix="p08-trace-", suffix=".jsonl"
    ) as handle:

        def _flight() -> dict:
            registry = MetricsRegistry()
            history = MetricsHistory(
                registry, interval=_P08_HISTORY_INTERVAL[mode]
            )
            profiler = SamplingProfiler()
            profiler.start()
            try:
                report = serve_once(
                    instance,
                    metrics=registry,
                    trace_sink=TraceSink(handle.name),
                    latency_registry=MetricsRegistry(),
                    history=history,
                    profiler=profiler,
                    admin=True,
                    admin_poll_hz=_P08_POLL_HZ,
                    admin_poll_paths=_P08_POLL_PATHS,
                )
            finally:
                profiler.stop()
            layer_counts["history_samples"] = len(history)
            layer_counts["profile_samples"] = profiler.samples
            return report

        arms = {"off": lambda: serve_once(instance), "flight": _flight}
        rounds: dict = {arm: [] for arm in arms}
        reports: dict = {arm: None for arm in arms}
        for _ in range(_P08_ROUNDS[mode]):
            for arm, run in arms.items():
                start = time.perf_counter()
                reports[arm] = run()
                rounds[arm].append(time.perf_counter() - start)
        # Gate on the best head-to-head round: each round runs off and
        # flight back to back, so their ratio cancels the multi-second
        # contention drift a shared box injects — dividing two floors
        # taken from *different* time slices does not.  The minimum over
        # rounds is the quietest head-to-head comparison; a real
        # regression (say an accidentally quadratic span path) inflates
        # every round's ratio, so the min still catches it.
        best = {arm: min(times) for arm, times in rounds.items()}
        flight_ratio = min(
            f / o for o, f in zip(rounds["off"], rounds["flight"])
        )
        handle.seek(0)
        trace_spans = sum(1 for _ in handle)
    results = {
        arm: run_serve_instance(instance, _P08_SEED, report=report)
        for arm, report in reports.items()
    }
    bare = results["off"]
    flight = results["flight"]
    reports_identical = (
        flight.cost == bare.cost
        and flight.leases == bare.leases
        and flight.detail["broker_stats"] == bare.detail["broker_stats"]
    )
    events = bare.detail["broker_stats"]["events"]
    report_equal = all(
        result.detail["serve"]["report_equal"]
        for result in results.values()
    )
    verified = all(
        verify_serve(instance, result).ok for result in results.values()
    )
    return {
        "schema": SCHEMA,
        "bench": "p08_flight",
        "mode": mode,
        "params": {
            "horizon": _P08_HORIZON[mode],
            "num_resources": _P08_RESOURCES[mode],
            "tenants_per_resource": _P08_TENANTS_PER_RESOURCE,
            "num_shards": _P08_SHARDS[mode],
            "rounds": _P08_ROUNDS[mode],
            "poll_hz": _P08_POLL_HZ,
            "poll_paths": list(_P08_POLL_PATHS),
            "history_interval": _P08_HISTORY_INTERVAL[mode],
            "seed": _P08_SEED,
        },
        "metrics": {
            "events": events,
            "requests": bare.detail["serve"]["requests"],
            "tenants": bare.detail["serve"]["tenants"],
            "leases": len(bare.leases),
            "cost": bare.cost,
            "off_elapsed_sec": round(best["off"], 4),
            "flight_elapsed_sec": round(best["flight"], 4),
            "off_events_per_sec": round(events / best["off"]),
            "flight_events_per_sec": round(events / best["flight"]),
            "flight_ratio": round(flight_ratio, 4),
            "trace_spans": trace_spans,
            "history_samples": layer_counts["history_samples"],
            "profile_samples": layer_counts["profile_samples"],
            "layers_lit": bool(
                trace_spans
                and layer_counts["history_samples"] >= 2
                and layer_counts["profile_samples"]
            ),
            "reports_identical": reports_identical,
            "report_equal": report_equal,
            "verified": verified,
        },
        "env": _environment(),
    }


# ----------------------------------------------------------------------
# P9: direct data plane vs routed relay (two-arm cluster topology)
# ----------------------------------------------------------------------
def measure_p09(mode: str = "smoke") -> dict:
    """Clustered serving, routed vs direct, from the same run.

    Two arms over the identical ``p04``-shaped instance, interleaved so
    machine drift hits both:

    * ``routed`` — every tenant mutation relays through the router (the
      pre-direct shape; the baseline arm).
    * ``direct`` — tenants perform the route handshake, then send
      acquire/renew/release straight to the owning worker; the router
      keeps only ticks, barriers, and supervision.

    Each arm is a full :func:`~repro.cluster.loadgen.cluster_once`
    cycle; the rated seconds are the drive phase alone, best of
    ``rounds`` per arm.  ``direct_ratio`` is the direct arm's speedup
    over the routed arm (routed wall clock / direct wall clock) — the
    headline number, gated ``>= 1.0`` on multi-core machines only:
    removing the router hop must pay where there are cores to pay with,
    while a single-core box serialises both arms and the record says so
    via ``cpus``.  Both arms must stay byte-identical to the inline
    replay (``report_equal``) and to *each other* on cost, leases, and
    broker counters (``reports_identical``) — the topology moves bytes,
    never behaviour.
    """
    _require_mode(mode)
    from dataclasses import replace

    from ..cluster.loadgen import (
        build_cluster_instance,
        cluster_once,
        run_cluster_instance,
        verify_cluster,
    )

    routed = build_cluster_instance(
        "markov",
        _P09_HORIZON[mode],
        _P09_SEED,
        num_resources=_P09_RESOURCES[mode],
        tenants_per_resource=_P09_TENANTS_PER_RESOURCE,
        num_workers=_P09_WORKERS[mode],
        shards_per_worker=_P09_SHARDS_PER_WORKER[mode],
        topology="routed",
    )
    arms = {"routed": routed, "direct": replace(routed, topology="direct")}
    best: dict = {arm: None for arm in arms}
    reports: dict = {arm: None for arm in arms}
    for _ in range(_P09_ROUNDS[mode]):
        for arm, instance in arms.items():
            report = cluster_once(instance)
            elapsed = report["drive_seconds"]
            if best[arm] is None or elapsed < best[arm]:
                best[arm] = elapsed
                reports[arm] = report
    results = {
        arm: run_cluster_instance(arms[arm], _P09_SEED, report=reports[arm])
        for arm in arms
    }
    base = results["routed"]
    reports_identical = all(
        result.cost == base.cost
        and result.leases == base.leases
        and result.detail["broker_stats"] == base.detail["broker_stats"]
        for result in results.values()
    )
    events = base.detail["broker_stats"]["events"]
    report_equal = all(
        result.detail["cluster"]["report_equal"]
        for result in results.values()
    )
    verified = all(
        verify_cluster(arms[arm], result).ok
        for arm, result in results.items()
    )
    return {
        "schema": SCHEMA,
        "bench": "p09_direct",
        "mode": mode,
        "params": {
            "horizon": _P09_HORIZON[mode],
            "num_resources": _P09_RESOURCES[mode],
            "tenants_per_resource": _P09_TENANTS_PER_RESOURCE,
            "num_workers": _P09_WORKERS[mode],
            "shards_per_worker": _P09_SHARDS_PER_WORKER[mode],
            "codec": routed.codec,
            "rounds": _P09_ROUNDS[mode],
            "seed": _P09_SEED,
        },
        "metrics": {
            "events": events,
            "requests": reports["routed"]["requests"],
            "tenants": len(routed.tenants),
            "workers": routed.num_workers,
            "leases": len(base.leases),
            "cost": base.cost,
            "routed_elapsed_sec": round(best["routed"], 4),
            "direct_elapsed_sec": round(best["direct"], 4),
            "routed_events_per_sec": round(events / best["routed"]),
            "direct_events_per_sec": round(events / best["direct"]),
            "direct_ratio": round(best["routed"] / best["direct"], 4),
            "handshakes": reports["direct"].get("handshakes", 0),
            "retried_ops": reports["direct"].get("retried_ops", 0),
            "reports_identical": reports_identical,
            "report_equal": report_equal,
            "verified": verified,
        },
        "env": _environment(),
    }


_MEASURERS = {
    "p01_broker": measure_p01,
    "p02_runner": measure_p02,
    "p03_serve": measure_p03,
    "p04_cluster": measure_p04,
    "p05_obs": measure_p05,
    "p06_durable": measure_p06,
    "p07_admin": measure_p07,
    "p08_flight": measure_p08,
    "p09_direct": measure_p09,
}


def measure(bench: str, mode: str = "smoke") -> dict:
    """Run one named benchmark at one mode; returns its record."""
    if bench not in _MEASURERS:
        raise ModelError(
            f"unknown bench {bench!r}; known: {', '.join(BENCH_NAMES)}"
        )
    return _MEASURERS[bench](mode)


# ----------------------------------------------------------------------
# Committed trajectory files
# ----------------------------------------------------------------------
def load_committed(path: str | Path) -> dict:
    """Read a committed BENCH_*.json trajectory file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("schema") != SCHEMA:
        raise ModelError(
            f"{path}: unsupported schema {data.get('schema')!r} "
            f"(expected {SCHEMA})"
        )
    return data


def update_committed(committed: dict, record: dict) -> dict:
    """Fold a fresh record into a committed trajectory (returns it).

    Only the record's mode entry moves; the frozen ``baseline`` block —
    the pre-optimization reference the headline speedup is measured
    against — is never touched by refreshes.
    """
    if committed.get("bench") != record["bench"]:
        raise ModelError(
            f"record for {record['bench']!r} cannot refresh a "
            f"{committed.get('bench')!r} trajectory"
        )
    committed.setdefault("modes", {})[record["mode"]] = {
        "params": record["params"],
        "metrics": record["metrics"],
        "env": record["env"],
    }
    return committed


def dump_json(data: dict, path: str | Path) -> None:
    """Write a record or trajectory as stable, diff-friendly JSON."""
    Path(path).write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------
#: Metrics gated as "fresh must not drop more than tolerance below
#: committed".  Structural metrics are checked exactly, below.
_RATE_GATES = {
    "p01_broker": ("events_per_sec", "leases_per_sec"),
    "p02_runner": ("events_per_sec",),
    "p03_serve": ("events_per_sec",),
    "p04_cluster": ("events_per_sec",),
    "p05_obs": ("off_events_per_sec", "on_events_per_sec"),
    "p06_durable": ("off_events_per_sec", "batch_events_per_sec"),
    "p07_admin": ("bare_events_per_sec", "admin_events_per_sec"),
    "p08_flight": ("off_events_per_sec", "flight_events_per_sec"),
    "p09_direct": ("routed_events_per_sec", "direct_events_per_sec"),
}
_EXACT_GATES = {
    "p01_broker": ("events", "leases"),
    "p02_runner": ("events", "leases", "byte_identical", "verified"),
    "p03_serve": ("events", "leases", "report_equal", "verified"),
    "p04_cluster": ("events", "leases", "report_equal", "verified"),
    "p05_obs": (
        "events", "leases", "reports_identical", "report_equal", "verified",
    ),
    "p06_durable": (
        "events", "leases", "reports_identical", "report_equal", "verified",
    ),
    "p07_admin": (
        "events", "leases", "reports_identical", "report_equal", "verified",
    ),
    "p08_flight": (
        "events", "leases", "layers_lit", "reports_identical",
        "report_equal", "verified",
    ),
    "p09_direct": (
        "events", "leases", "reports_identical", "report_equal", "verified",
    ),
}


def check(
    committed: dict, record: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Compare a fresh record against the committed trajectory.

    Returns human-readable failures (empty = pass).  Rate metrics fail
    past ``tolerance`` relative regression; structural metrics must match
    exactly.  Two multi-core-only gates ride on top (fan-out cannot beat
    one process on a single core, and the records say so via ``cpus``
    rather than pretending otherwise): p02's shard speedup must exceed
    1.0, and p04's clustered events/sec must beat its frozen baseline —
    the committed p03 *single-process* serving rate — whenever both the
    committed entry and this machine have more than one usable core.
    p05 carries its own machine-independent gate: the instrumented rate
    must stay at or above :data:`OBS_OVERHEAD_FLOOR` times the
    uninstrumented rate *of the same run* — a ratio of two wall clocks
    on the same box, so it holds regardless of how slow the box is.
    """
    bench = record["bench"]
    mode = record["mode"]
    entry = committed.get("modes", {}).get(mode)
    if entry is None:
        return [
            f"{bench}: no committed numbers for mode {mode!r} — "
            "run with --write to record them"
        ]
    failures: list[str] = []
    fresh = record["metrics"]
    reference = entry["metrics"]
    for metric in _RATE_GATES[bench]:
        floor = reference[metric] * (1.0 - tolerance)
        if fresh[metric] < floor:
            failures.append(
                f"{bench}/{mode}: {metric} regressed to {fresh[metric]:,} "
                f"(committed {reference[metric]:,}, floor {floor:,.0f} "
                f"at {tolerance:.0%} tolerance)"
            )
    for metric in _EXACT_GATES[bench]:
        if fresh[metric] != reference[metric]:
            failures.append(
                f"{bench}/{mode}: {metric} changed from "
                f"{reference[metric]!r} to {fresh[metric]!r}"
            )
    if (
        bench == "p02_runner"
        and record["env"]["cpus"] > 1
        and entry["env"]["cpus"] > 1
        and fresh["shard_speedup"] <= 1.0
    ):
        failures.append(
            f"p02_runner/{mode}: sharded replay no longer beats unsharded "
            f"(speedup {fresh['shard_speedup']}) on a "
            f"{record['env']['cpus']}-core machine"
        )
    if (
        bench == "p04_cluster"
        and record["env"]["cpus"] > 1
        and entry["env"]["cpus"] > 1
    ):
        baseline = committed.get("baseline", {}).get("events_per_sec")
        if baseline is not None and fresh["events_per_sec"] <= baseline:
            failures.append(
                f"p04_cluster/{mode}: clustered serving no longer beats "
                f"the single-process p03 baseline "
                f"({fresh['events_per_sec']:,} <= {baseline:,} events/sec) "
                f"on a {record['env']['cpus']}-core machine"
            )
    if bench == "p05_obs":
        floor = fresh["off_events_per_sec"] * OBS_OVERHEAD_FLOOR
        if fresh["on_events_per_sec"] < floor:
            failures.append(
                f"p05_obs/{mode}: instrumented serving dropped to "
                f"{fresh['on_events_per_sec']:,} events/sec — below "
                f"{OBS_OVERHEAD_FLOOR:.0%} of the uninstrumented "
                f"{fresh['off_events_per_sec']:,} events/sec from the "
                f"same run (overhead ratio {fresh['overhead_ratio']})"
            )
    if bench == "p06_durable":
        floor = fresh["off_events_per_sec"] * DURABLE_BATCH_FLOOR
        if fresh["batch_events_per_sec"] < floor:
            failures.append(
                f"p06_durable/{mode}: batch-fsynced serving dropped to "
                f"{fresh['batch_events_per_sec']:,} events/sec — below "
                f"{DURABLE_BATCH_FLOOR:.0%} of the WAL-off "
                f"{fresh['off_events_per_sec']:,} events/sec from the "
                f"same run (batch ratio {fresh['batch_ratio']})"
            )
    if bench == "p07_admin":
        floor = fresh["bare_events_per_sec"] * ADMIN_OVERHEAD_FLOOR
        if fresh["admin_events_per_sec"] < floor:
            failures.append(
                f"p07_admin/{mode}: serving under an actively scraped "
                f"admin plane dropped to "
                f"{fresh['admin_events_per_sec']:,} events/sec — below "
                f"{ADMIN_OVERHEAD_FLOOR:.0%} of the bare "
                f"{fresh['bare_events_per_sec']:,} events/sec from the "
                f"same run (admin ratio {fresh['admin_ratio']})"
            )
    if bench == "p08_flight":
        # Gate on the best head-to-head round — the same-run comparison
        # measure_p08 stabilised against machine drift.
        ceiling = 1.0 / FLIGHT_OVERHEAD_FLOOR
        if fresh["flight_ratio"] > ceiling:
            failures.append(
                f"p08_flight/{mode}: serving under the full live-debugging "
                f"layer took {fresh['flight_ratio']}x the bare wall clock "
                f"(best head-to-head round) — keeps less than "
                f"{FLIGHT_OVERHEAD_FLOOR:.0%} of the bare rate "
                f"(ratio ceiling {ceiling:.4f})"
            )
    if (
        bench == "p09_direct"
        and record["env"]["cpus"] > 1
        and entry["env"]["cpus"] > 1
        and fresh["direct_ratio"] < 1.0
    ):
        failures.append(
            f"p09_direct/{mode}: the direct data plane no longer beats "
            f"the routed relay ({fresh['direct_events_per_sec']:,} < "
            f"{fresh['routed_events_per_sec']:,} events/sec, ratio "
            f"{fresh['direct_ratio']}) on a "
            f"{record['env']['cpus']}-core machine"
        )
    return failures
