"""Typed request events and traces for the lease broker.

A *trace* is the serving-side view of a demand sequence: instead of an
instance's static demand list, a stream of :class:`Acquire`,
:class:`Release` and :class:`Tick` events arriving in non-decreasing time
order, tagged with the tenant that issued them and the resource they
target.  Traces are what :class:`repro.engine.broker.LeaseBroker`
consumes, what ``python -m repro engine replay`` replays, and what the
throughput benchmark drives by the hundred thousand.

Generation is deterministic: :func:`generate_trace` derives every tenant's
demand days from the :mod:`repro.workloads` generators under a single
seed, so a ``(workload, horizon, seed)`` triple names one exact byte
sequence.  Persistence is JSONL — one event per line — matching the
versioned-and-boring philosophy of :mod:`repro.io`, which exposes the
file-level ``save_trace``/``load_trace`` wrappers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Iterable, Union

from .._validation import (
    require,
    require_nonnegative_int,
    require_positive_int,
)
from ..errors import ModelError
from ..workloads import (
    burst_days,
    diurnal_days,
    make_rng,
    markov_days,
    sparse_days,
    spawn,
)

TRACE_FORMAT_VERSION = 1


@dataclass(frozen=True, slots=True)
class Acquire:
    """Tenant asks to hold ``resource`` from day ``time`` onwards."""

    time: int
    tenant: str
    resource: int

    def __post_init__(self) -> None:
        require_nonnegative_int(self.time, "Acquire.time")
        require_nonnegative_int(self.resource, "Acquire.resource")


@dataclass(frozen=True, slots=True)
class Release:
    """Tenant gives ``resource`` back at day ``time``."""

    time: int
    tenant: str
    resource: int

    def __post_init__(self) -> None:
        require_nonnegative_int(self.time, "Release.time")
        require_nonnegative_int(self.resource, "Release.resource")


@dataclass(frozen=True, slots=True)
class Tick:
    """Pure clock advance: expire grants up to day ``time``, serve nothing."""

    time: int

    def __post_init__(self) -> None:
        require_nonnegative_int(self.time, "Tick.time")


Event = Union[Acquire, Release, Tick]

# Within one day the broker first advances the clock, then frees
# resources, then serves new requests — mirroring run_online's
# non-decreasing-arrival contract at sub-day granularity.
_KIND_RANK = {"tick": 0, "release": 1, "acquire": 2}


# ----------------------------------------------------------------------
# Workload day patterns
# ----------------------------------------------------------------------
def _adversarial_days(horizon: int, rng) -> list[int]:
    """Sparse singletons plus solid bursts — both naive-policy killers."""
    isolated = sparse_days(horizon, max(1, horizon // 30), spawn(rng, 1))
    bursts = burst_days(
        horizon, max(1, horizon // 80), max(2, horizon // 12), spawn(rng, 2)
    )
    return sorted(set(isolated) | set(bursts))


def _batch_days(horizon: int, rng) -> list[int]:
    """Regular heavy arrival windows: two busy days in every eight."""
    return [t for t in range(horizon) if t % 8 < 2]


_DAY_PATTERNS: dict[str, Callable[[int, object], list[int]]] = {
    "markov": lambda horizon, rng: markov_days(horizon, 0.1, 0.8, rng),
    "diurnal": lambda horizon, rng: diurnal_days(horizon, 32, 0.5, 0.05, rng),
    "adversarial": _adversarial_days,
    "batch": _batch_days,
}

WORKLOAD_NAMES: tuple[str, ...] = tuple(sorted(_DAY_PATTERNS))


def day_pattern(workload: str, horizon: int, rng) -> list[int]:
    """Sorted demand days for one named workload shape.

    The same four shapes parameterise scenario registration and trace
    generation, so ``parking-markov`` the scenario and a ``markov`` trace
    stress the algorithms with the same arrival statistics.
    """
    require_positive_int(horizon, "horizon")
    if workload not in _DAY_PATTERNS:
        raise ModelError(
            f"unknown workload {workload!r}; known: {', '.join(WORKLOAD_NAMES)}"
        )
    return _DAY_PATTERNS[workload](horizon, rng)


# ----------------------------------------------------------------------
# Trace generation
# ----------------------------------------------------------------------
def generate_trace(
    workload: str,
    horizon: int,
    seed: int,
    num_tenants: int = 3,
    num_resources: int = 4,
    hold: int = 2,
    tick_every: int = 16,
) -> tuple[Event, ...]:
    """A deterministic acquire/release/tick stream for the broker.

    Each tenant draws its own demand-day sequence from the workload shape
    (independent child streams of one seed), acquires a seeded-random
    resource on each demand day, and schedules a release ``hold`` days
    later.  Demand days inside a hold window re-acquire the held resource,
    which the broker serves as a *renewal* — so generated traces exercise
    the full acquire/renew/release/expire lifecycle.  ``Tick`` events fire
    every ``tick_every`` days so the broker expires idle grants even
    between requests.  Events are sorted by
    ``(time, tick < release < acquire, tenant, resource)``, making the
    trace a pure function of its arguments.
    """
    require_positive_int(num_tenants, "num_tenants")
    require_positive_int(num_resources, "num_resources")
    require_positive_int(hold, "hold")
    require_positive_int(tick_every, "tick_every")
    root = make_rng(seed)
    events: list[Event] = []
    for index in range(num_tenants):
        tenant = f"tenant-{index}"
        tenant_rng = spawn(root, index)
        release_at: dict[int, int] = {}
        for day in day_pattern(workload, horizon, tenant_rng):
            resource = tenant_rng.randrange(num_resources)
            events.append(Acquire(time=day, tenant=tenant, resource=resource))
            release_at[resource] = max(
                release_at.get(resource, 0), day + hold
            )
        for resource, when in release_at.items():
            events.append(
                Release(time=when, tenant=tenant, resource=resource)
            )
    for t in range(0, horizon + hold + 1, tick_every):
        events.append(Tick(time=t))
    return tuple(sorted(events, key=_event_sort_key))


def generate_resource_trace(
    workload: str,
    horizon: int,
    seed: int,
    num_resources: int = 8,
    tenants_per_resource: int = 2,
    hold: int = 3,
    tick_every: int = 32,
    resource_lo: int = 0,
    resource_hi: int | None = None,
) -> tuple[Event, ...]:
    """A broker trace whose per-resource streams are independent — shardable.

    Unlike :func:`generate_trace` (which draws one stream per tenant and
    scatters it over random resources), every ``(resource, tenant slot)``
    pair here derives its demand days from its *own* child RNG stream.
    That makes the trace for a resource range a pure function of
    ``(args, range)``: generating ``[lo, hi)`` yields exactly the events
    of the full trace that touch those resources — plus the shared
    ``Tick`` skeleton, which every shard replicates so all shards advance
    to the same final clock.  This is the property intra-scenario
    sharding rides on: shard traces replay independently and their
    outcomes merge to the unsharded run's, byte for byte.

    The final tick lands at ``horizon + hold``, at or after every
    acquire/release in any shard, so expiry classification (expired vs
    still-active at end of trace) is identical shard-by-shard.
    """
    require_positive_int(horizon, "horizon")
    require_positive_int(num_resources, "num_resources")
    require_positive_int(tenants_per_resource, "tenants_per_resource")
    require_positive_int(hold, "hold")
    require_positive_int(tick_every, "tick_every")
    if resource_hi is None:
        resource_hi = num_resources
    require(
        0 <= resource_lo <= resource_hi <= num_resources,
        f"resource range [{resource_lo}, {resource_hi}) outside "
        f"[0, {num_resources})",
    )
    events: list[Event] = []
    for resource in range(resource_lo, resource_hi):
        for slot in range(tenants_per_resource):
            tenant = f"tenant-r{resource}-{slot}"
            # Child seeds are a pure function of (seed, resource, slot):
            # spawn() would consume parent-RNG state, making the stream
            # depend on which *other* resources were generated first —
            # exactly what shard purity must rule out.
            child = make_rng(
                (seed * 0x9E3779B1 + resource) * 0x9E3779B1 + slot
            )
            days = day_pattern(workload, horizon, child)
            release_day = None
            for day in days:
                events.append(
                    Acquire(time=day, tenant=tenant, resource=resource)
                )
                release_day = day + hold
            if release_day is not None:
                events.append(
                    Release(time=release_day, tenant=tenant, resource=resource)
                )
    last_tick = horizon + hold
    for t in range(0, last_tick, tick_every):
        events.append(Tick(time=t))
    events.append(Tick(time=last_tick))
    return tuple(sorted(events, key=_event_sort_key))


def _event_sort_key(event: Event) -> tuple:
    if isinstance(event, Tick):
        return (event.time, _KIND_RANK["tick"], "", -1)
    rank = _KIND_RANK["release" if isinstance(event, Release) else "acquire"]
    return (event.time, rank, event.tenant, event.resource)


# ----------------------------------------------------------------------
# JSONL round-trip
# ----------------------------------------------------------------------
def event_to_payload(event: Event) -> dict:
    """Encode one event as a JSON-ready dict with a ``kind`` tag."""
    if isinstance(event, Acquire):
        return {
            "kind": "acquire",
            "time": event.time,
            "tenant": event.tenant,
            "resource": event.resource,
        }
    if isinstance(event, Release):
        return {
            "kind": "release",
            "time": event.time,
            "tenant": event.tenant,
            "resource": event.resource,
        }
    if isinstance(event, Tick):
        return {"kind": "tick", "time": event.time}
    raise ModelError(f"cannot serialize events of type {type(event).__name__}")


def event_from_payload(payload: dict) -> Event:
    """Decode one event payload produced by :func:`event_to_payload`."""
    kind = payload.get("kind")
    if kind == "acquire":
        return Acquire(
            time=int(payload["time"]),
            tenant=str(payload["tenant"]),
            resource=int(payload["resource"]),
        )
    if kind == "release":
        return Release(
            time=int(payload["time"]),
            tenant=str(payload["tenant"]),
            resource=int(payload["resource"]),
        )
    if kind == "tick":
        return Tick(time=int(payload["time"]))
    raise ModelError(f"unknown event kind {kind!r}")


def trace_to_jsonl(events: Iterable[Event]) -> str:
    """Serialize a trace as JSONL: a version header line, then one event per line."""
    lines = [
        json.dumps(
            {"kind": "trace-header", "version": TRACE_FORMAT_VERSION},
            sort_keys=True,
        )
    ]
    lines.extend(
        json.dumps(event_to_payload(event), sort_keys=True) for event in events
    )
    return "\n".join(lines) + "\n"


def trace_from_jsonl(text: str) -> tuple[Event, ...]:
    """Deserialize a trace written by :func:`trace_to_jsonl`."""
    lines = [line for line in text.splitlines() if line.strip()]
    require(len(lines) >= 1, "trace is empty (missing header line)")
    header = json.loads(lines[0])
    require(
        header.get("kind") == "trace-header"
        and header.get("version") == TRACE_FORMAT_VERSION,
        f"unsupported trace header {lines[0]!r}",
    )
    return tuple(event_from_payload(json.loads(line)) for line in lines[1:])
