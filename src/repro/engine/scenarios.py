"""First-class scenarios: every problem family × workload shape, named.

A :class:`Scenario` packages what the benchmarks used to wire up ad hoc —
instance construction, the online algorithm, the feasibility verifier and
the offline-optimum baseline — behind one name like ``parking-markov``.
The registry makes the full cross product of the four problem families
(parking, setcover, facility, deadlines) and the four workload shapes
(markov, diurnal, adversarial, batch) addressable from the CLI, the
replay runner, and the benchmark suite alike; benchmarks may register
additional ad-hoc scenarios (``bench-e01-K4``, ...) on top.

Everything is a pure function of ``(scenario name, seed)``: builders
derive all randomness from the seed through independent child streams,
so any scenario run is reproducible from its name and one integer.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from ..analysis.verify import (
    VerificationReport,
    verify_facility,
    verify_multicover,
    verify_old,
    verify_parking,
)
from ..core.lease import Lease, LeaseSchedule
from ..core.results import OptBounds, RunResult
from ..core.timeline import run_online
from ..deadlines import make_old_instance, optimal_dp, run_old
from ..errors import ModelError
from ..facility import make_instance as make_facility_instance
from ..facility import optimum as facility_optimum
from ..facility import run_facility_leasing
from ..parking import DeterministicParkingPermit, make_instance, optimal_interval
from ..setcover import (
    MulticoverDemand,
    OnlineSetMulticoverLeasing,
    SetMulticoverLeasingInstance,
    optimum as setcover_optimum,
    random_set_system,
)
from ..workloads import diurnal_days, exponential_batches, make_rng, markov_days, spawn
from .broker import LeaseBroker, replay_trace
from .events import (
    WORKLOAD_NAMES,
    Acquire,
    Event,
    day_pattern,
    generate_resource_trace,
)

FAMILY_NAMES: tuple[str, ...] = ("parking", "setcover", "facility", "deadlines")

#: The serving-layer family registered on top of :data:`FAMILY_NAMES`.
BROKER_FAMILY = "broker"


@dataclass(frozen=True)
class Scenario:
    """One named, fully self-describing experiment configuration.

    Attributes:
        name: registry key, e.g. ``"parking-markov"``.
        family: problem family (one of :data:`FAMILY_NAMES` for builtins).
        workload: workload shape the builder draws demands from.
        description: one-line summary for ``engine list``.
        build: ``seed -> instance``.
        run: ``(instance, seed) -> RunResult`` — runs the online algorithm.
        verify: ``(instance, result) -> VerificationReport`` — re-checks
            feasibility against raw model semantics.
        optimum: ``instance -> OptBounds`` — the offline baseline.
        build_shard: optional ``(seed, shard, num_shards) -> instance`` —
            a *sub-instance* holding only the shard's resources.  Must
            satisfy ``build(seed) == build_shard(seed, 0, 1)`` and shard
            instances must be disjoint and exhaustive, so per-shard runs
            merge to the unsharded run exactly.
        merge_runs: optional ``[RunResult per shard, in shard order] ->
            RunResult`` — reassembles the unsharded run.  Required
            (with ``build_shard``) for :func:`repro.engine.replay_sharded`.
        cluster_servable: the scenario's traffic can be served by a
            :mod:`repro.cluster` worker fleet with an exact merge — true
            for the broker-trace lineage (``broker-*``, ``serve-*``,
            ``cluster-*``), whose resources are independent and whose
            costs sum exactly.  Shown as the ``cluster`` column of
            ``engine list``.
        direct_servable: the scenario's traffic can ride the two-plane
            ``direct`` topology — tenants handshake with the router and
            send mutations straight to the owning worker — true for the
            ``cluster-*`` lineage (a fleet with a routing handshake to
            hand out).  Shown as the ``direct`` column of ``engine
            list`` and gating ``engine loadgen --direct``.
        paper_result: the paper claim the scenario's run/verify loop
            exercises (e.g. ``"Thm 3.3"``); empty for serving-layer
            scenarios whose subject is the system, not the paper.  Shown
            as the ``paper result`` column of ``engine list``.
    """

    name: str
    family: str
    workload: str
    description: str
    build: Callable[[int], object]
    run: Callable[[object, int], RunResult]
    verify: Callable[[object, RunResult], VerificationReport]
    optimum: Callable[[object], OptBounds]
    build_shard: Callable[[int, int, int], object] | None = None
    merge_runs: Callable[[Sequence[RunResult]], RunResult] | None = None
    cluster_servable: bool = False
    direct_servable: bool = False
    paper_result: str = ""

    @property
    def shardable(self) -> bool:
        """Whether the scenario supports intra-scenario sharding."""
        return self.build_shard is not None and self.merge_runs is not None


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the registry; returns it for chaining."""
    if scenario.name in _REGISTRY and not replace:
        raise ModelError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name."""
    if name not in _REGISTRY:
        raise ModelError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        )
    return _REGISTRY[name]


def scenario_names() -> tuple[str, ...]:
    """All registered names, sorted."""
    return tuple(sorted(_REGISTRY))


def all_scenarios() -> tuple[Scenario, ...]:
    """All registered scenarios in name order."""
    return tuple(_REGISTRY[name] for name in scenario_names())


def families() -> tuple[str, ...]:
    """Distinct families present in the registry, sorted."""
    return tuple(sorted({s.family for s in _REGISTRY.values()}))


def by_family(family: str) -> tuple[Scenario, ...]:
    """Registered scenarios of one family, in name order."""
    return tuple(s for s in all_scenarios() if s.family == family)


# ----------------------------------------------------------------------
# Builtin scenario builders
# ----------------------------------------------------------------------
def _parking_scenario(workload: str) -> Scenario:
    schedule = LeaseSchedule.power_of_two(4, cost_growth=1.7)

    def build(seed: int):
        days = day_pattern(workload, 240, make_rng(seed))
        return make_instance(schedule, days or [0])

    def run(instance, seed: int) -> RunResult:
        algorithm = DeterministicParkingPermit(instance.schedule)
        return run_online(
            algorithm, instance.rainy_days, name="parking primal-dual (Alg 1)"
        )

    return Scenario(
        name=f"parking-{workload}",
        family="parking",
        workload=workload,
        description=f"parking permit, K=4, {workload} rainy days",
        build=build,
        run=run,
        verify=lambda instance, result: verify_parking(
            instance, list(result.leases)
        ),
        optimum=lambda instance: OptBounds.exactly(
            optimal_interval(instance).cost, method="dp-interval"
        ),
        paper_result="Thm 2.7",
    )


def _setcover_scenario(workload: str) -> Scenario:
    schedule = LeaseSchedule.power_of_two(3, cost_growth=1.7)
    per_day = 3 if workload == "batch" else 1

    def build(seed: int):
        rng = make_rng(seed)
        system = random_set_system(
            num_elements=12,
            num_sets=8,
            memberships=3,
            schedule=schedule,
            rng=spawn(rng, 101),
        )
        demand_rng = spawn(rng, 202)
        days = day_pattern(workload, 48, spawn(rng, 303)) or [0]
        demands = tuple(
            MulticoverDemand(
                element=demand_rng.randrange(system.num_elements),
                arrival=day,
                coverage=demand_rng.randint(1, 2),
            )
            for day in days
            for _ in range(per_day)
        )
        return SetMulticoverLeasingInstance(
            system=system, schedule=schedule, demands=demands
        )

    def run(instance, seed: int) -> RunResult:
        algorithm = OnlineSetMulticoverLeasing(instance, seed=seed)
        return run_online(
            algorithm,
            instance.demands,
            name="set multicover leasing (Alg 3+4)",
        )

    return Scenario(
        name=f"setcover-{workload}",
        family="setcover",
        workload=workload,
        description=f"set multicover leasing, n=12 m=8 K=3, {workload} arrivals",
        build=build,
        run=run,
        verify=lambda instance, result: verify_multicover(
            instance, list(result.leases)
        ),
        optimum=setcover_optimum,
        paper_result="Thm 3.3",
    )


def _facility_batch_sizes(workload: str, rng) -> list[int]:
    if workload == "batch":
        return [2] * 8
    if workload == "adversarial":
        # The conjectured-hard Section 4.4 pattern |D_i| = 2^i, kept tiny.
        return exponential_batches(4)
    if workload == "markov":
        days = set(markov_days(12, 0.3, 0.7, rng))
    else:  # diurnal
        days = set(diurnal_days(12, 8, 0.9, 0.1, rng))
    sizes = [1 if t in days else 0 for t in range(12)]
    return sizes if sum(sizes) else [1] + [0] * 11


def _facility_scenario(workload: str) -> Scenario:
    schedule = LeaseSchedule.power_of_two(2, cost_growth=1.7)

    def build(seed: int):
        rng = make_rng(seed)
        return make_facility_instance(
            schedule,
            num_facilities=3,
            batch_sizes=_facility_batch_sizes(workload, spawn(rng, 11)),
            rng=spawn(rng, 22),
        )

    def run(instance, seed: int) -> RunResult:
        algorithm = run_facility_leasing(instance)
        return RunResult(
            algorithm="facility two-phase online (Ch. 4)",
            cost=algorithm.cost,
            leases=tuple(algorithm.leases),
            num_demands=instance.num_clients,
            detail={
                "connections": tuple(algorithm.connections),
                "leasing_cost": algorithm.leasing_cost,
                "connection_cost": algorithm.connection_cost,
            },
        )

    return Scenario(
        name=f"facility-{workload}",
        family="facility",
        workload=workload,
        description=f"facility leasing, 3 sites K=2, {workload} client batches",
        build=build,
        run=run,
        verify=lambda instance, result: verify_facility(
            instance, list(result.leases), list(result.detail["connections"])
        ),
        optimum=facility_optimum,
        paper_result="Thm 4.5",
    )


def _deadline_slacks(workload: str, days: list[int], rng) -> list[tuple[int, int]]:
    if workload == "adversarial":
        # Zero slack everywhere: OLD degenerates to its hardest regime
        # for the dual raising (every interval is a single day).
        return [(day, 0) for day in days]
    if workload == "batch":
        # Same-day clients with staggered slacks; normalization keeps the
        # earliest deadline, exercising the Section 5.2 reduction.
        return [(day, slack) for day in days for slack in (0, 2, 4)]
    return [(day, rng.randint(0, 5)) for day in days]


def _deadlines_scenario(workload: str) -> Scenario:
    schedule = LeaseSchedule.power_of_two(3, cost_growth=1.7)

    def build(seed: int):
        rng = make_rng(seed)
        days = day_pattern(workload, 120, spawn(rng, 7)) or [0]
        clients = _deadline_slacks(workload, days, spawn(rng, 13))
        return make_old_instance(schedule, clients).normalized()

    def run(instance, seed: int) -> RunResult:
        algorithm = run_old(instance)
        return RunResult(
            algorithm="OLD primal-dual (Ch. 5)",
            cost=algorithm.cost,
            leases=tuple(algorithm.leases),
            num_demands=len(instance.clients),
        )

    return Scenario(
        name=f"deadlines-{workload}",
        family="deadlines",
        workload=workload,
        description=f"leasing with deadlines, K=3, {workload} arrivals",
        build=build,
        run=run,
        verify=lambda instance, result: verify_old(
            instance, list(result.leases)
        ),
        optimum=lambda instance: OptBounds.exactly(
            optimal_dp(instance), method="dp"
        ),
        paper_result="Thm 5.3",
    )


# ----------------------------------------------------------------------
# Broker-trace scenarios (the shardable serving-layer family)
# ----------------------------------------------------------------------
def shard_ranges(
    num_resources: int, num_shards: int
) -> tuple[tuple[int, int], ...]:
    """The contiguous shard partition of ``range(num_resources)``.

    The single source of truth for how resources map to shards — used by
    ``build_shard`` here and by :class:`repro.serve.server.LeaseServer`,
    so a served workload and an intra-scenario sharded replay always
    agree on which broker owns which resource.  ``num_shards`` may
    exceed ``num_resources`` (the surplus ranges are empty), which
    :func:`repro.engine.replay_sharded` tolerates; the serve layer is
    stricter and rejects it.
    """
    if num_shards < 1:
        raise ModelError("num_shards must be >= 1")
    return tuple(
        (
            shard * num_resources // num_shards,
            (shard + 1) * num_resources // num_shards,
        )
        for shard in range(num_shards)
    )


@dataclass(frozen=True)
class BrokerTraceInstance:
    """A broker event trace plus the resource range it covers.

    ``resources = (lo, hi)`` names the half-open resource range the
    events touch; the full instance has ``(0, num_resources)``.  Shard
    instances carry the same generation parameters, so any shard is
    reproducible from ``(seed, shard range)`` alone.
    """

    schedule: LeaseSchedule
    workload: str
    horizon: int
    seed: int
    num_resources: int
    resources: tuple[int, int]
    events: tuple[Event, ...]


def _coverage_spans(
    leases: Sequence[Lease],
) -> dict[int, tuple[list[int], list[int]]]:
    """Per-resource merged coverage intervals as (starts, ends) columns."""
    by_resource: dict[int, list[tuple[int, int]]] = {}
    for lease in leases:
        by_resource.setdefault(lease.resource, []).append(
            (lease.start, lease.start + lease.length)
        )
    spans: dict[int, tuple[list[int], list[int]]] = {}
    for resource, intervals in by_resource.items():
        intervals.sort()
        starts: list[int] = []
        ends: list[int] = []
        for start, end in intervals:
            if ends and start <= ends[-1]:
                if end > ends[-1]:
                    ends[-1] = end
            else:
                starts.append(start)
                ends.append(end)
        spans[resource] = (starts, ends)
    return spans


def verify_broker_trace(
    instance: BrokerTraceInstance, result: RunResult
) -> VerificationReport:
    """Every acquire day covered by a purchased lease on its resource.

    Interval-merges each resource's leases once and answers each of the
    trace's acquire events with a binary search, so verification stays
    O((L + E) log L) even for million-event shards.
    """
    spans = _coverage_spans(result.leases)
    failures = []
    checked = 0
    for event in instance.events:
        if type(event) is not Acquire:
            continue
        checked += 1
        columns = spans.get(event.resource)
        if columns is not None:
            starts, ends = columns
            where = bisect.bisect_right(starts, event.time) - 1
            if where >= 0 and event.time < ends[where]:
                continue
        failures.append(
            f"resource {event.resource} uncovered at day {event.time}"
        )
    return VerificationReport(
        ok=not failures, failures=tuple(failures), checked=checked
    )


def broker_trace_optimum(instance: BrokerTraceInstance) -> OptBounds:
    """Exact offline optimum: the per-resource interval-model DP, summed.

    Resources are independent in the broker model (one policy each), so
    the instance optimum is the sum of single-resource parking optima
    over each resource's demanded days.
    """
    days_by_resource: dict[int, set[int]] = {}
    for event in instance.events:
        if type(event) is Acquire:
            days_by_resource.setdefault(event.resource, set()).add(event.time)
    total = 0.0
    for resource in sorted(days_by_resource):
        parking = make_instance(
            instance.schedule, sorted(days_by_resource[resource])
        )
        total += optimal_interval(parking).cost
    return OptBounds.exactly(total, method="dp-interval/resource")


_BROKER_ALGORITHM = "lease broker (per-resource primal-dual)"
_MERGED_TICK_KEYS = ("ticks",)


def run_broker_trace(instance: BrokerTraceInstance, seed: int) -> RunResult:
    """Replay the trace through a fresh broker; canonical result record.

    ``cost`` is summed over :attr:`LeaseBroker.leases` — resource order,
    purchase order within a resource — which is exactly the order shard
    merging reproduces, so sharded and unsharded costs agree bitwise.
    """
    broker = LeaseBroker(instance.schedule)
    stats = replay_trace(broker, instance.events)
    leases = broker.leases
    cost = 0.0
    for lease in leases:
        cost += lease.cost
    return RunResult(
        algorithm=_BROKER_ALGORITHM,
        cost=cost,
        leases=leases,
        num_demands=stats.acquires + stats.renewals,
        detail={
            "broker_stats": stats.mergeable(),
            "num_active": broker.num_active,
        },
    )


def merge_broker_runs(runs: Sequence[RunResult]) -> RunResult:
    """Merge per-shard broker runs into the unsharded run, byte for byte.

    Shards own disjoint contiguous resource ranges in shard order, so
    concatenating their lease tuples reproduces the unsharded
    resource-major order — and the merged cost is *recomputed* by
    summing that tuple in order, reproducing the unsharded run's exact
    float association for any schedule (per-shard subtotals would drift
    by a ULP on non-exactly-representable costs).  Tick events are
    replicated to every shard (the shared clock skeleton): tick-derived
    counters are taken from the first shard, everything else sums.
    """
    if not runs:
        raise ModelError("cannot merge zero shard runs")
    leases: list[Lease] = []
    num_demands = 0
    num_active = 0
    merged_stats: dict[str, int] = {}
    for position, run in enumerate(runs):
        leases.extend(run.leases)
        num_demands += run.num_demands
        num_active += run.detail["num_active"]
        for key, value in run.detail["broker_stats"].items():
            if key in _MERGED_TICK_KEYS:
                if position == 0:
                    merged_stats[key] = value
            else:
                merged_stats[key] = merged_stats.get(key, 0) + value
    # Every shard counted its replicated ticks inside `events`; keep one.
    ticks = merged_stats.get("ticks", 0)
    merged_stats["events"] -= (len(runs) - 1) * ticks
    cost = 0.0
    for lease in leases:
        cost += lease.cost
    return RunResult(
        algorithm=_BROKER_ALGORITHM,
        cost=cost,
        leases=tuple(leases),
        num_demands=num_demands,
        detail={"broker_stats": merged_stats, "num_active": num_active},
    )


def make_broker_scenario(
    workload: str,
    name: str | None = None,
    horizon: int = 360,
    num_resources: int = 8,
    tenants_per_resource: int = 2,
    hold: int = 3,
    tick_every: int = 32,
    num_types: int = 4,
) -> Scenario:
    """A shardable serving-layer scenario over a multi-resource trace.

    The schedule uses ``cost_growth=2.0`` so every lease cost, and hence
    every cost sum, is exactly representable — shard merges cannot drift
    by a ULP no matter how resources are grouped.  The perf harness
    re-instantiates this family at heavy sizes via ``name``/``horizon``.
    """
    schedule = LeaseSchedule.power_of_two(num_types, cost_growth=2.0)

    def build_shard(seed: int, shard: int, num_shards: int):
        if not 0 <= shard < num_shards:
            raise ModelError(
                f"shard {shard} outside [0, {num_shards})"
            )
        lo, hi = shard_ranges(num_resources, num_shards)[shard]
        events = generate_resource_trace(
            workload,
            horizon,
            seed,
            num_resources=num_resources,
            tenants_per_resource=tenants_per_resource,
            hold=hold,
            tick_every=tick_every,
            resource_lo=lo,
            resource_hi=hi,
        )
        return BrokerTraceInstance(
            schedule=schedule,
            workload=workload,
            horizon=horizon,
            seed=seed,
            num_resources=num_resources,
            resources=(lo, hi),
            events=events,
        )

    return Scenario(
        name=name or f"{BROKER_FAMILY}-{workload}",
        family=BROKER_FAMILY,
        workload=workload,
        description=(
            f"lease-broker trace, {num_resources} resources x "
            f"{tenants_per_resource} tenants, K={num_types}, "
            f"{workload} demand days (shardable)"
        ),
        build=lambda seed: build_shard(seed, 0, 1),
        run=run_broker_trace,
        verify=verify_broker_trace,
        optimum=broker_trace_optimum,
        build_shard=build_shard,
        merge_runs=merge_broker_runs,
        cluster_servable=True,
    )


# ----------------------------------------------------------------------
# Serve scenarios (the loadgen family over the asyncio serving layer)
# ----------------------------------------------------------------------
#: The closed-loop serving family registered on top of :data:`BROKER_FAMILY`.
SERVE_FAMILY = "serve"


def make_serve_scenario(
    workload: str,
    name: str | None = None,
    horizon: int = 128,
    num_resources: int = 8,
    tenants_per_resource: int = 2,
    hold: int = 3,
    tick_every: int = 32,
    num_types: int = 4,
    num_shards: int = 4,
) -> Scenario:
    """A serving-layer scenario: closed-loop tenants over unix sockets.

    The same trace shape as :func:`make_broker_scenario`, but instead of
    an in-process replay the events arrive as live traffic — every
    tenant is its own pipelined client on its own unix-socket connection
    against an in-process :class:`~repro.serve.server.LeaseServer` with
    ``num_shards`` shard brokers.  The run returns the *served*
    aggregate; verification fails unless it matched the inline replay of
    the merged trace exactly (see :mod:`repro.serve.loadgen`).

    :mod:`repro.serve` is imported lazily from the hooks so listing the
    registry never pulls in the asyncio serving stack.
    """

    def build(seed: int):
        from ..serve.loadgen import build_serve_instance

        return build_serve_instance(
            workload,
            horizon,
            seed,
            num_resources=num_resources,
            tenants_per_resource=tenants_per_resource,
            hold=hold,
            tick_every=tick_every,
            num_types=num_types,
            num_shards=num_shards,
        )

    def run(instance, seed: int) -> RunResult:
        from ..serve.loadgen import run_serve_instance

        return run_serve_instance(instance, seed)

    def verify(instance, result: RunResult) -> VerificationReport:
        from ..serve.loadgen import verify_serve

        return verify_serve(instance, result)

    tenants = num_resources * tenants_per_resource
    return Scenario(
        name=name or f"{SERVE_FAMILY}-{workload}",
        family=SERVE_FAMILY,
        workload=workload,
        description=(
            f"served lease-broker loadgen, {tenants} closed-loop tenants "
            f"over unix sockets, {num_shards} shard brokers, "
            f"{workload} demand days"
        ),
        build=build,
        run=run,
        verify=verify,
        optimum=lambda instance: broker_trace_optimum(instance.trace),
        cluster_servable=True,
    )


# ----------------------------------------------------------------------
# Cluster scenarios (loadgen over a multi-process worker fleet)
# ----------------------------------------------------------------------
#: The multi-process serving family on top of :data:`SERVE_FAMILY`.
CLUSTER_FAMILY = "cluster"


def make_cluster_scenario(
    workload: str,
    name: str | None = None,
    horizon: int = 96,
    num_resources: int = 8,
    tenants_per_resource: int = 2,
    hold: int = 3,
    tick_every: int = 32,
    num_types: int = 4,
    num_workers: int = 2,
    shards_per_worker: int = 2,
    codec: str = "bin",
    topology: str = "routed",
) -> Scenario:
    """A clustered serving scenario: tenants against a worker fleet.

    The same trace shape as :func:`make_serve_scenario`, but the events
    arrive at a :class:`~repro.cluster.router.ClusterRouter` fronting
    ``num_workers`` real ``engine serve`` *processes* (each with
    ``shards_per_worker`` broker sub-shards), with the binary codec on
    the router→worker links by default.  ``topology="direct"`` keeps
    the router as control plane only: tenants perform the routing
    handshake and send their mutations straight to the owning worker.
    The run returns the *clustered* aggregate; verification fails
    unless it matched the inline replay of the merged trace exactly
    (see :mod:`repro.cluster.loadgen`).

    :mod:`repro.cluster` is imported lazily from the hooks so listing
    the registry never pulls in the cluster stack (or spawns anything).
    """

    def build(seed: int):
        from ..cluster.loadgen import build_cluster_instance

        return build_cluster_instance(
            workload,
            horizon,
            seed,
            num_resources=num_resources,
            tenants_per_resource=tenants_per_resource,
            hold=hold,
            tick_every=tick_every,
            num_types=num_types,
            num_workers=num_workers,
            shards_per_worker=shards_per_worker,
            codec=codec,
            topology=topology,
        )

    def run(instance, seed: int) -> RunResult:
        from ..cluster.loadgen import run_cluster_instance

        return run_cluster_instance(instance, seed)

    def verify(instance, result: RunResult) -> VerificationReport:
        from ..cluster.loadgen import verify_cluster

        return verify_cluster(instance, result)

    tenants = num_resources * tenants_per_resource
    path = (
        "direct to" if topology == "direct" else "routed over"
    )
    return Scenario(
        name=name or f"{CLUSTER_FAMILY}-{workload}",
        family=CLUSTER_FAMILY,
        workload=workload,
        description=(
            f"clustered lease-broker loadgen, {tenants} closed-loop "
            f"tenants {path} {num_workers} worker processes x "
            f"{shards_per_worker} shards, codec={codec}, "
            f"{workload} demand days"
        ),
        build=build,
        run=run,
        verify=verify,
        optimum=lambda instance: broker_trace_optimum(instance.trace),
        cluster_servable=True,
        direct_servable=True,
    )


_FAMILY_BUILDERS: dict[str, Callable[[str], Scenario]] = {
    "parking": _parking_scenario,
    "setcover": _setcover_scenario,
    "facility": _facility_scenario,
    "deadlines": _deadlines_scenario,
}


def _register_builtins() -> Iterator[Scenario]:
    for family in FAMILY_NAMES:
        for workload in WORKLOAD_NAMES:
            yield register(_FAMILY_BUILDERS[family](workload))


BUILTIN_SCENARIOS: tuple[Scenario, ...] = tuple(_register_builtins())

BROKER_SCENARIOS: tuple[Scenario, ...] = tuple(
    register(make_broker_scenario(workload)) for workload in WORKLOAD_NAMES
)

SERVE_SCENARIOS: tuple[Scenario, ...] = tuple(
    register(make_serve_scenario(workload)) for workload in WORKLOAD_NAMES
)

CLUSTER_SCENARIOS: tuple[Scenario, ...] = tuple(
    register(make_cluster_scenario(workload)) for workload in WORKLOAD_NAMES
)

#: The same fleets served over the two-plane direct topology — the
#: byte-identity matrix's fourth corner as first-class scenarios.
CLUSTER_DIRECT_SCENARIOS: tuple[Scenario, ...] = tuple(
    register(
        make_cluster_scenario(
            workload,
            name=f"{CLUSTER_FAMILY}-direct-{workload}",
            topology="direct",
        )
    )
    for workload in WORKLOAD_NAMES
)
