"""First-class scenarios: every problem family × workload shape, named.

A :class:`Scenario` packages what the benchmarks used to wire up ad hoc —
instance construction, the online algorithm, the feasibility verifier and
the offline-optimum baseline — behind one name like ``parking-markov``.
The registry makes the full cross product of the four problem families
(parking, setcover, facility, deadlines) and the four workload shapes
(markov, diurnal, adversarial, batch) addressable from the CLI, the
replay runner, and the benchmark suite alike; benchmarks may register
additional ad-hoc scenarios (``bench-e01-K4``, ...) on top.

Everything is a pure function of ``(scenario name, seed)``: builders
derive all randomness from the seed through independent child streams,
so any scenario run is reproducible from its name and one integer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..analysis.verify import (
    VerificationReport,
    verify_facility,
    verify_multicover,
    verify_old,
    verify_parking,
)
from ..core.lease import LeaseSchedule
from ..core.results import OptBounds, RunResult
from ..core.timeline import run_online
from ..deadlines import make_old_instance, optimal_dp, run_old
from ..errors import ModelError
from ..facility import make_instance as make_facility_instance
from ..facility import optimum as facility_optimum
from ..facility import run_facility_leasing
from ..parking import DeterministicParkingPermit, make_instance, optimal_interval
from ..setcover import (
    MulticoverDemand,
    OnlineSetMulticoverLeasing,
    SetMulticoverLeasingInstance,
    optimum as setcover_optimum,
    random_set_system,
)
from ..workloads import diurnal_days, exponential_batches, make_rng, markov_days, spawn
from .events import WORKLOAD_NAMES, day_pattern

FAMILY_NAMES: tuple[str, ...] = ("parking", "setcover", "facility", "deadlines")


@dataclass(frozen=True)
class Scenario:
    """One named, fully self-describing experiment configuration.

    Attributes:
        name: registry key, e.g. ``"parking-markov"``.
        family: problem family (one of :data:`FAMILY_NAMES` for builtins).
        workload: workload shape the builder draws demands from.
        description: one-line summary for ``engine list``.
        build: ``seed -> instance``.
        run: ``(instance, seed) -> RunResult`` — runs the online algorithm.
        verify: ``(instance, result) -> VerificationReport`` — re-checks
            feasibility against raw model semantics.
        optimum: ``instance -> OptBounds`` — the offline baseline.
    """

    name: str
    family: str
    workload: str
    description: str
    build: Callable[[int], object]
    run: Callable[[object, int], RunResult]
    verify: Callable[[object, RunResult], VerificationReport]
    optimum: Callable[[object], OptBounds]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the registry; returns it for chaining."""
    if scenario.name in _REGISTRY and not replace:
        raise ModelError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name."""
    if name not in _REGISTRY:
        raise ModelError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        )
    return _REGISTRY[name]


def scenario_names() -> tuple[str, ...]:
    """All registered names, sorted."""
    return tuple(sorted(_REGISTRY))


def all_scenarios() -> tuple[Scenario, ...]:
    """All registered scenarios in name order."""
    return tuple(_REGISTRY[name] for name in scenario_names())


def families() -> tuple[str, ...]:
    """Distinct families present in the registry, sorted."""
    return tuple(sorted({s.family for s in _REGISTRY.values()}))


def by_family(family: str) -> tuple[Scenario, ...]:
    """Registered scenarios of one family, in name order."""
    return tuple(s for s in all_scenarios() if s.family == family)


# ----------------------------------------------------------------------
# Builtin scenario builders
# ----------------------------------------------------------------------
def _parking_scenario(workload: str) -> Scenario:
    schedule = LeaseSchedule.power_of_two(4, cost_growth=1.7)

    def build(seed: int):
        days = day_pattern(workload, 240, make_rng(seed))
        return make_instance(schedule, days or [0])

    def run(instance, seed: int) -> RunResult:
        algorithm = DeterministicParkingPermit(instance.schedule)
        return run_online(
            algorithm, instance.rainy_days, name="parking primal-dual (Alg 1)"
        )

    return Scenario(
        name=f"parking-{workload}",
        family="parking",
        workload=workload,
        description=f"parking permit, K=4, {workload} rainy days",
        build=build,
        run=run,
        verify=lambda instance, result: verify_parking(
            instance, list(result.leases)
        ),
        optimum=lambda instance: OptBounds.exactly(
            optimal_interval(instance).cost, method="dp-interval"
        ),
    )


def _setcover_scenario(workload: str) -> Scenario:
    schedule = LeaseSchedule.power_of_two(3, cost_growth=1.7)
    per_day = 3 if workload == "batch" else 1

    def build(seed: int):
        rng = make_rng(seed)
        system = random_set_system(
            num_elements=12,
            num_sets=8,
            memberships=3,
            schedule=schedule,
            rng=spawn(rng, 101),
        )
        demand_rng = spawn(rng, 202)
        days = day_pattern(workload, 48, spawn(rng, 303)) or [0]
        demands = tuple(
            MulticoverDemand(
                element=demand_rng.randrange(system.num_elements),
                arrival=day,
                coverage=demand_rng.randint(1, 2),
            )
            for day in days
            for _ in range(per_day)
        )
        return SetMulticoverLeasingInstance(
            system=system, schedule=schedule, demands=demands
        )

    def run(instance, seed: int) -> RunResult:
        algorithm = OnlineSetMulticoverLeasing(instance, seed=seed)
        return run_online(
            algorithm,
            instance.demands,
            name="set multicover leasing (Alg 3+4)",
        )

    return Scenario(
        name=f"setcover-{workload}",
        family="setcover",
        workload=workload,
        description=f"set multicover leasing, n=12 m=8 K=3, {workload} arrivals",
        build=build,
        run=run,
        verify=lambda instance, result: verify_multicover(
            instance, list(result.leases)
        ),
        optimum=setcover_optimum,
    )


def _facility_batch_sizes(workload: str, rng) -> list[int]:
    if workload == "batch":
        return [2] * 8
    if workload == "adversarial":
        # The conjectured-hard Section 4.4 pattern |D_i| = 2^i, kept tiny.
        return exponential_batches(4)
    if workload == "markov":
        days = set(markov_days(12, 0.3, 0.7, rng))
    else:  # diurnal
        days = set(diurnal_days(12, 8, 0.9, 0.1, rng))
    sizes = [1 if t in days else 0 for t in range(12)]
    return sizes if sum(sizes) else [1] + [0] * 11


def _facility_scenario(workload: str) -> Scenario:
    schedule = LeaseSchedule.power_of_two(2, cost_growth=1.7)

    def build(seed: int):
        rng = make_rng(seed)
        return make_facility_instance(
            schedule,
            num_facilities=3,
            batch_sizes=_facility_batch_sizes(workload, spawn(rng, 11)),
            rng=spawn(rng, 22),
        )

    def run(instance, seed: int) -> RunResult:
        algorithm = run_facility_leasing(instance)
        return RunResult(
            algorithm="facility two-phase online (Ch. 4)",
            cost=algorithm.cost,
            leases=tuple(algorithm.leases),
            num_demands=instance.num_clients,
            detail={
                "connections": tuple(algorithm.connections),
                "leasing_cost": algorithm.leasing_cost,
                "connection_cost": algorithm.connection_cost,
            },
        )

    return Scenario(
        name=f"facility-{workload}",
        family="facility",
        workload=workload,
        description=f"facility leasing, 3 sites K=2, {workload} client batches",
        build=build,
        run=run,
        verify=lambda instance, result: verify_facility(
            instance, list(result.leases), list(result.detail["connections"])
        ),
        optimum=facility_optimum,
    )


def _deadline_slacks(workload: str, days: list[int], rng) -> list[tuple[int, int]]:
    if workload == "adversarial":
        # Zero slack everywhere: OLD degenerates to its hardest regime
        # for the dual raising (every interval is a single day).
        return [(day, 0) for day in days]
    if workload == "batch":
        # Same-day clients with staggered slacks; normalization keeps the
        # earliest deadline, exercising the Section 5.2 reduction.
        return [(day, slack) for day in days for slack in (0, 2, 4)]
    return [(day, rng.randint(0, 5)) for day in days]


def _deadlines_scenario(workload: str) -> Scenario:
    schedule = LeaseSchedule.power_of_two(3, cost_growth=1.7)

    def build(seed: int):
        rng = make_rng(seed)
        days = day_pattern(workload, 120, spawn(rng, 7)) or [0]
        clients = _deadline_slacks(workload, days, spawn(rng, 13))
        return make_old_instance(schedule, clients).normalized()

    def run(instance, seed: int) -> RunResult:
        algorithm = run_old(instance)
        return RunResult(
            algorithm="OLD primal-dual (Ch. 5)",
            cost=algorithm.cost,
            leases=tuple(algorithm.leases),
            num_demands=len(instance.clients),
        )

    return Scenario(
        name=f"deadlines-{workload}",
        family="deadlines",
        workload=workload,
        description=f"leasing with deadlines, K=3, {workload} arrivals",
        build=build,
        run=run,
        verify=lambda instance, result: verify_old(
            instance, list(result.leases)
        ),
        optimum=lambda instance: OptBounds.exactly(
            optimal_dp(instance), method="dp"
        ),
    )


_FAMILY_BUILDERS: dict[str, Callable[[str], Scenario]] = {
    "parking": _parking_scenario,
    "setcover": _setcover_scenario,
    "facility": _facility_scenario,
    "deadlines": _deadlines_scenario,
}


def _register_builtins() -> Iterator[Scenario]:
    for family in FAMILY_NAMES:
        for workload in WORKLOAD_NAMES:
            yield register(_FAMILY_BUILDERS[family](workload))


BUILTIN_SCENARIOS: tuple[Scenario, ...] = tuple(_register_builtins())
