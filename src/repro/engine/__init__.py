"""repro.engine — lease-broker service and parallel scenario-replay engine.

The problem packages answer "what does the algorithm buy on this
instance?"; this package answers the two *serving* questions on top of
them:

* :mod:`repro.engine.broker` — a multi-tenant :class:`LeaseBroker` that
  exposes ``acquire / renew / release / active_leases / force_release``
  semantics and maps every request onto an
  :class:`~repro.core.framework.OnlineLeasingAlgorithm`, so any policy in
  the library can back a lease service.
* :mod:`repro.engine.events` — the typed event/trace model
  (:class:`Acquire`, :class:`Release`, :class:`Tick`) the broker consumes,
  with deterministic trace generation from :mod:`repro.workloads` and a
  JSONL round-trip.
* :mod:`repro.engine.scenarios` — a registry naming every problem-family
  × workload combination as a first-class :class:`Scenario` with build,
  run, verify, and offline-optimum hooks.
* :mod:`repro.engine.paper` — the paper-experiment scenario families
  (``setcover-e06..08``, ``facility-e09``, ``deadline-e10..13``,
  ``forecast-*``) plus :data:`EXPERIMENT_INDEX`, the machine-readable
  experiment-to-engine map for E1–E15.
* :mod:`repro.engine.runner` — a batched replay engine that fans
  scenarios out across a process pool and aggregates per-scenario
  results into the existing ratio/table machinery.

``python -m repro engine {list,run,replay,serve,loadgen}`` is the
command-line front end (``serve``/``loadgen`` front the
:mod:`repro.serve` asyncio serving layer, whose ``serve-*`` scenario
family is registered here); every ``bench_e*`` benchmark is a thin
wrapper over the same substrate — E1–E5/E14 register their sweep points
ad hoc at import, E6–E13/E15 resolve them from the central registry.
"""

from .broker import BrokerStats, LeaseBroker, LeaseGrant, replay_trace
from .events import (
    WORKLOAD_NAMES,
    Acquire,
    Event,
    Release,
    Tick,
    day_pattern,
    event_from_payload,
    event_to_payload,
    generate_resource_trace,
    generate_trace,
    trace_from_jsonl,
    trace_to_jsonl,
)
from .paper import EXPERIMENT_INDEX, ExperimentEntry, experiment
from .runner import (
    TRANSPORT_MODES,
    ScenarioOutcome,
    merge_shard_outcomes,
    render_report,
    replay,
    replay_sharded,
    run_scenario,
    run_scenario_shard,
)
from .scenarios import (
    BROKER_SCENARIOS,
    CLUSTER_SCENARIOS,
    SERVE_SCENARIOS,
    BrokerTraceInstance,
    Scenario,
    all_scenarios,
    by_family,
    families,
    get_scenario,
    make_broker_scenario,
    make_cluster_scenario,
    make_serve_scenario,
    register,
    scenario_names,
    shard_ranges,
)

__all__ = [
    "Acquire",
    "BROKER_SCENARIOS",
    "BrokerStats",
    "BrokerTraceInstance",
    "CLUSTER_SCENARIOS",
    "EXPERIMENT_INDEX",
    "Event",
    "ExperimentEntry",
    "LeaseBroker",
    "LeaseGrant",
    "Release",
    "SERVE_SCENARIOS",
    "Scenario",
    "ScenarioOutcome",
    "TRANSPORT_MODES",
    "Tick",
    "WORKLOAD_NAMES",
    "all_scenarios",
    "by_family",
    "day_pattern",
    "event_from_payload",
    "event_to_payload",
    "experiment",
    "families",
    "generate_resource_trace",
    "generate_trace",
    "get_scenario",
    "make_broker_scenario",
    "make_cluster_scenario",
    "make_serve_scenario",
    "merge_shard_outcomes",
    "register",
    "render_report",
    "replay",
    "replay_sharded",
    "replay_trace",
    "run_scenario",
    "run_scenario_shard",
    "scenario_names",
    "shard_ranges",
    "trace_from_jsonl",
    "trace_to_jsonl",
]
