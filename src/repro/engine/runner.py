"""Batched scenario replay across a process pool.

The runner turns scenario names into :class:`ScenarioOutcome` records —
build the instance, run the online algorithm, verify feasibility against
the raw model, solve the offline baseline — and aggregates them through
the library's existing ratio machinery (:class:`~repro.core.RatioReport`
per run, :func:`~repro.analysis.summarize_reports` across runs,
:func:`~repro.analysis.format_table` for output).

Parallelism is process-level (:mod:`multiprocessing`): jobs are
``(scenario name, seed)`` pairs, so only primitives cross the pool
boundary and workers resolve the scenario in their own registry.  Results
stream back via ``imap`` in job order, which keeps the aggregate report
byte-identical for any worker count — the property the determinism tests
pin down.  On platforms without ``fork``, ad-hoc scenarios registered
outside :mod:`repro.engine.scenarios` must be importable by workers;
the built-in registry always is.

Two scaling paths sit on top of the basic fan-out:

* **Result transport** — bulk lease data returns from workers as a
  columnar payload (:mod:`repro.core.leasebuf`), inline for small runs
  and via ``multiprocessing.shared_memory`` past a size threshold, never
  as a per-object pickle stream.  Decoded outcomes carry a lazy
  :class:`~repro.core.leasebuf.LeaseView` that compares equal to the
  tuple it was packed from.
* **Intra-scenario sharding** — :func:`replay_sharded` splits one
  shardable scenario (``Scenario.build_shard``) into per-resource-range
  shard jobs, replays them in parallel, and merges the shard runs
  (``Scenario.merge_runs``) into a single outcome that is byte-identical
  to the unsharded run.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from ..analysis import format_table, summarize_reports
from ..core.leasebuf import LeaseView, claim_payload, pack_leases, share_payload
from ..core.results import OptBounds, RatioReport, RunResult
from ..errors import ModelError
from .scenarios import Scenario, get_scenario, scenario_names

#: Valid result-transport modes for pooled replay.
TRANSPORT_MODES = ("auto", "packed", "shm", "object")

#: Packed payloads at least this large ride shared memory under "auto".
SHM_THRESHOLD_BYTES = 1 << 20


@dataclass(frozen=True, slots=True)
class ScenarioOutcome:
    """Everything one (scenario, seed) job produced, pool-serializable."""

    scenario: str
    family: str
    workload: str
    seed: int
    run: RunResult
    opt: OptBounds
    verified: bool
    failures: tuple[str, ...]

    @property
    def report(self) -> RatioReport:
        """The run bracketed by its OPT bounds."""
        return RatioReport(run=self.run, opt=self.opt)

    @property
    def ratio(self) -> float:
        """Conservative competitive ratio (online cost over OPT lower)."""
        return self.report.ratio


def _outcome_for(
    scenario: Scenario, instance: object, seed: int
) -> ScenarioOutcome:
    result = scenario.run(instance, seed)
    verification = scenario.verify(instance, result)
    opt = scenario.optimum(instance)
    return ScenarioOutcome(
        scenario=scenario.name,
        family=scenario.family,
        workload=scenario.workload,
        seed=seed,
        run=result,
        opt=opt,
        verified=verification.ok,
        failures=verification.failures,
    )


def run_scenario(name: str, seed: int = 0) -> ScenarioOutcome:
    """Execute one scenario end to end: build, run, verify, baseline."""
    scenario = get_scenario(name)
    return _outcome_for(scenario, scenario.build(seed), seed)


def run_scenario_shard(
    name: str, seed: int, shard: int, num_shards: int
) -> ScenarioOutcome:
    """Execute one shard of a shardable scenario end to end.

    The shard's sub-instance is built, run, verified, and bounded like a
    full scenario; :func:`replay_sharded` merges the per-shard outcomes.
    """
    scenario = get_scenario(name)
    if scenario.build_shard is None:
        raise ModelError(f"scenario {name!r} does not support sharding")
    instance = scenario.build_shard(seed, shard, num_shards)
    return _outcome_for(scenario, instance, seed)


# ----------------------------------------------------------------------
# Result transport across the pool boundary
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class _WireOutcome:
    """A ScenarioOutcome with its lease bulk moved out of the pickle.

    ``payload`` carries the packed columns inline; ``segment`` instead
    names a shared-memory segment (and payload size) the parent claims.
    Exactly one of the two is set.
    """

    outcome: ScenarioOutcome
    payload: bytes | None
    segment: tuple[str, int] | None


def _encode_outcome(outcome: ScenarioOutcome, transport: str):
    if transport == "object":
        return outcome
    payload = pack_leases(outcome.run.leases)
    stripped = replace(outcome, run=replace(outcome.run, leases=()))
    if transport == "shm" or (
        transport == "auto" and len(payload) >= SHM_THRESHOLD_BYTES
    ):
        try:
            name, size = share_payload(payload)
            return _WireOutcome(outcome=stripped, payload=None, segment=(name, size))
        except OSError:
            pass  # no usable /dev/shm: fall back to the inline payload
    return _WireOutcome(outcome=stripped, payload=payload, segment=None)


def _decode_outcome(wire) -> ScenarioOutcome:
    if isinstance(wire, ScenarioOutcome):
        return wire
    if wire.segment is not None:
        payload = claim_payload(*wire.segment)
    else:
        payload = wire.payload
    outcome = wire.outcome
    return replace(outcome, run=replace(outcome.run, leases=LeaseView(payload)))


@dataclass(frozen=True, slots=True)
class _WireError:
    """A worker-side failure, shipped back instead of raised.

    Raising inside a pooled job would abort ``imap`` mid-stream and
    strand the shared-memory segments sibling jobs had already
    published; returning the failure lets the parent claim every
    segment first and raise once, with the job named.
    """

    job: tuple
    error: str


def _run_job(job: tuple) -> ScenarioOutcome | _WireOutcome | _WireError:
    name, seed, shard, num_shards, transport = job
    try:
        if shard is None:
            outcome = run_scenario(name, seed)
        else:
            outcome = run_scenario_shard(name, seed, shard, num_shards)
        return _encode_outcome(outcome, transport)
    except Exception as exc:
        return _WireError(job=job[:4], error=f"{type(exc).__name__}: {exc}")


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _run_pool(jobs: list[tuple], workers: int) -> list[ScenarioOutcome]:
    context = _pool_context()
    with context.Pool(processes=min(workers, len(jobs))) as pool:
        wires = list(pool.imap(_run_job, jobs, chunksize=1))
    outcomes = []
    errors = []
    for wire in wires:  # claim every shared segment before raising
        if isinstance(wire, _WireError):
            errors.append(wire)
        else:
            outcomes.append(_decode_outcome(wire))
    if errors:
        details = "; ".join(
            f"{error.job[0]!r} (seed {error.job[1]}"
            + (f", shard {error.job[2]}" if error.job[2] is not None else "")
            + f"): {error.error}"
            for error in errors
        )
        raise ModelError(f"{len(errors)} pooled job(s) failed: {details}")
    return outcomes


def _check_transport(transport: str) -> None:
    if transport not in TRANSPORT_MODES:
        raise ModelError(
            f"unknown transport {transport!r}; known: {', '.join(TRANSPORT_MODES)}"
        )


def replay(
    names: Iterable[str] | None = None,
    seeds: Sequence[int] = (0,),
    workers: int = 1,
    transport: str = "auto",
) -> list[ScenarioOutcome]:
    """Replay scenarios × seeds, fanning jobs over a process pool.

    Args:
        names: scenario names; ``None`` replays the whole registry in
            name order.
        seeds: one outcome is produced per (name, seed) pair.
        workers: pool size; ``1`` runs inline (no processes spawned).
        transport: how lease bulk returns from workers — ``"auto"``
            (packed columns, shared memory past
            :data:`SHM_THRESHOLD_BYTES`), ``"packed"``, ``"shm"``, or
            ``"object"`` (legacy whole-object pickle).  Inline runs
            ignore it.

    Returns:
        Outcomes in deterministic job order — names outermost, seeds
        innermost — regardless of ``workers``.
    """
    _check_transport(transport)
    if names is None:
        names = scenario_names()
    jobs = [(name, seed, None, 0, transport) for name in names for seed in seeds]
    # Resolve every name before forking so typos fail fast and locally.
    for name, *_ in jobs:
        get_scenario(name)
    if workers <= 1 or len(jobs) <= 1:
        return [run_scenario(name, seed) for name, seed, *_ in jobs]
    return _run_pool(jobs, workers)


def merge_shard_outcomes(
    scenario: Scenario, outcomes: Sequence[ScenarioOutcome]
) -> ScenarioOutcome:
    """Fold per-shard outcomes into the unsharded scenario outcome.

    The run merge is scenario-specific (``Scenario.merge_runs``); the
    bracketing optimum sums exactly (shards partition the resources),
    and verification conjoins.
    """
    if scenario.merge_runs is None:
        raise ModelError(f"scenario {scenario.name!r} does not support sharding")
    if not outcomes:
        raise ModelError("cannot merge zero shard outcomes")
    run = scenario.merge_runs([outcome.run for outcome in outcomes])
    opt = OptBounds(
        lower=sum(outcome.opt.lower for outcome in outcomes),
        upper=sum(outcome.opt.upper for outcome in outcomes),
        exact=all(outcome.opt.exact for outcome in outcomes),
        method=outcomes[0].opt.method,
    )
    failures: list[str] = []
    for outcome in outcomes:
        failures.extend(outcome.failures)
    return ScenarioOutcome(
        scenario=scenario.name,
        family=scenario.family,
        workload=scenario.workload,
        seed=outcomes[0].seed,
        run=run,
        opt=opt,
        verified=all(outcome.verified for outcome in outcomes),
        failures=tuple(failures),
    )


def replay_sharded(
    name: str,
    seed: int = 0,
    shards: int = 4,
    workers: int | None = None,
    transport: str = "auto",
) -> ScenarioOutcome:
    """Replay ONE heavy scenario split into intra-scenario shards.

    The scenario's resources are partitioned into ``shards`` contiguous
    ranges; each range builds, replays, verifies, and bounds its own
    sub-instance in parallel, and the shard outcomes merge into a single
    :class:`ScenarioOutcome` byte-identical to ``run_scenario(name,
    seed)`` — same leases, same cost, same report row.  ``workers``
    defaults to ``shards``; ``shards=1`` (or one worker) runs inline.
    """
    _check_transport(transport)
    if shards < 1:
        raise ModelError("shards must be >= 1")
    scenario = get_scenario(name)
    if not scenario.shardable:
        raise ModelError(f"scenario {name!r} does not support sharding")
    if workers is None:
        workers = shards
    jobs = [(name, seed, shard, shards, transport) for shard in range(shards)]
    if shards == 1 or workers <= 1:
        outcomes = [
            run_scenario_shard(name, seed, shard, shards)
            for shard in range(shards)
        ]
    else:
        outcomes = _run_pool(jobs, workers)
    if len(outcomes) == 1:
        return outcomes[0]
    return merge_shard_outcomes(scenario, outcomes)


def render_report(outcomes: Sequence[ScenarioOutcome], title: str = "") -> str:
    """The aggregate ratio table plus a cross-scenario summary line."""
    headers = [
        "scenario", "seed", "algorithm", "demands", "leases",
        "online", "OPT", "method", "ratio", "ok",
    ]
    rows = [
        [
            outcome.scenario,
            outcome.seed,
            outcome.run.algorithm,
            outcome.run.num_demands,
            len(outcome.run.leases),
            outcome.run.cost,
            outcome.opt.lower,
            outcome.opt.method,
            outcome.ratio,
            "yes" if outcome.verified else "NO",
        ]
        for outcome in outcomes
    ]
    table = format_table(headers, rows, title=title)
    if not outcomes:
        return table
    summary = summarize_reports([outcome.report for outcome in outcomes])
    verified = sum(1 for outcome in outcomes if outcome.verified)
    footer = (
        f"{summary.count} runs: mean ratio {summary.mean:.3f}, "
        f"max {summary.maximum:.3f}, min {summary.minimum:.3f}; "
        f"verified {verified}/{len(outcomes)}"
    )
    return table + "\n" + footer
