"""Batched scenario replay across a process pool.

The runner turns scenario names into :class:`ScenarioOutcome` records —
build the instance, run the online algorithm, verify feasibility against
the raw model, solve the offline baseline — and aggregates them through
the library's existing ratio machinery (:class:`~repro.core.RatioReport`
per run, :func:`~repro.analysis.summarize_reports` across runs,
:func:`~repro.analysis.format_table` for output).

Parallelism is process-level (:mod:`multiprocessing`): jobs are
``(scenario name, seed)`` pairs, so only primitives cross the pool
boundary and workers resolve the scenario in their own registry.  Results
stream back via ``imap`` in job order, which keeps the aggregate report
byte-identical for any worker count — the property the determinism tests
pin down.  On platforms without ``fork``, ad-hoc scenarios registered
outside :mod:`repro.engine.scenarios` must be importable by workers;
the built-in registry always is.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..analysis import format_table, summarize_reports
from ..core.results import OptBounds, RatioReport, RunResult
from .scenarios import get_scenario, scenario_names


@dataclass(frozen=True, slots=True)
class ScenarioOutcome:
    """Everything one (scenario, seed) job produced, pool-serializable."""

    scenario: str
    family: str
    workload: str
    seed: int
    run: RunResult
    opt: OptBounds
    verified: bool
    failures: tuple[str, ...]

    @property
    def report(self) -> RatioReport:
        """The run bracketed by its OPT bounds."""
        return RatioReport(run=self.run, opt=self.opt)

    @property
    def ratio(self) -> float:
        """Conservative competitive ratio (online cost over OPT lower)."""
        return self.report.ratio


def run_scenario(name: str, seed: int = 0) -> ScenarioOutcome:
    """Execute one scenario end to end: build, run, verify, baseline."""
    scenario = get_scenario(name)
    instance = scenario.build(seed)
    result = scenario.run(instance, seed)
    verification = scenario.verify(instance, result)
    opt = scenario.optimum(instance)
    return ScenarioOutcome(
        scenario=scenario.name,
        family=scenario.family,
        workload=scenario.workload,
        seed=seed,
        run=result,
        opt=opt,
        verified=verification.ok,
        failures=verification.failures,
    )


def _run_job(job: tuple[str, int]) -> ScenarioOutcome:
    return run_scenario(job[0], job[1])


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def replay(
    names: Iterable[str] | None = None,
    seeds: Sequence[int] = (0,),
    workers: int = 1,
) -> list[ScenarioOutcome]:
    """Replay scenarios × seeds, fanning jobs over a process pool.

    Args:
        names: scenario names; ``None`` replays the whole registry in
            name order.
        seeds: one outcome is produced per (name, seed) pair.
        workers: pool size; ``1`` runs inline (no processes spawned).

    Returns:
        Outcomes in deterministic job order — names outermost, seeds
        innermost — regardless of ``workers``.
    """
    if names is None:
        names = scenario_names()
    jobs = [(name, seed) for name in names for seed in seeds]
    # Resolve every name before forking so typos fail fast and locally.
    for name, _ in jobs:
        get_scenario(name)
    if workers <= 1 or len(jobs) <= 1:
        return [_run_job(job) for job in jobs]
    context = _pool_context()
    with context.Pool(processes=min(workers, len(jobs))) as pool:
        return list(pool.imap(_run_job, jobs, chunksize=1))


def render_report(outcomes: Sequence[ScenarioOutcome], title: str = "") -> str:
    """The aggregate ratio table plus a cross-scenario summary line."""
    headers = [
        "scenario", "seed", "algorithm", "demands", "leases",
        "online", "OPT", "method", "ratio", "ok",
    ]
    rows = [
        [
            outcome.scenario,
            outcome.seed,
            outcome.run.algorithm,
            outcome.run.num_demands,
            len(outcome.run.leases),
            outcome.run.cost,
            outcome.opt.lower,
            outcome.opt.method,
            outcome.ratio,
            "yes" if outcome.verified else "NO",
        ]
        for outcome in outcomes
    ]
    table = format_table(headers, rows, title=title)
    if not outcomes:
        return table
    summary = summarize_reports([outcome.report for outcome in outcomes])
    verified = sum(1 for outcome in outcomes if outcome.verified)
    footer = (
        f"{summary.count} runs: mean ratio {summary.mean:.3f}, "
        f"max {summary.maximum:.3f}, min {summary.minimum:.3f}; "
        f"verified {verified}/{len(outcomes)}"
    )
    return table + "\n" + footer
