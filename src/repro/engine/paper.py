"""Paper-experiment scenarios: E6–E13 and E15 on the replay substrate.

Every thesis result family that used to be driven ad hoc by its
benchmark module is registered here as first-class scenarios, so each
paper claim is reproducible through one CLI (``engine run``) and one
runner (:func:`repro.engine.replay`) with byte-identical aggregate
reports.  The experiment-to-scenario map for *all* of E1–E15 lives in
:data:`EXPERIMENT_INDEX`.

Naming is ``<family>-e<NN>-<point>`` — one scenario per sweep point of
the source benchmark (``setcover-e06-n24``, ``facility-e09-exponential``,
``deadline-e11-d32``, ``forecast-hedged-e25``), mirroring how E2 names
one ad-hoc scenario per K.

Seed contract (replay seed == instance draw == coin seed, whichever the
experiment randomises):

* **Fixed-instance randomized families** (E6/E7/E8/E12/E13): the paper
  fixes each sweep point's workload and averages over the algorithm's
  coins, so ``build`` ignores the replay seed and ``run`` uses it as the
  coin seed — E2's convention.
* **E10**: the algorithm is deterministic; the replay seed draws the
  instance (the benchmark takes the worst ratio over draws).
* **E11**: fully deterministic — ``build`` materialises the Figure 5.3
  construction, every seed replays the same interrogation.
* **E15**: the instance is fixed; the replay seed seeds the oracle's
  forecast noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.verify import (
    verify_facility,
    verify_multicover,
    verify_old,
    verify_parking,
    verify_repetitions,
    verify_scld,
)
from ..core.lease import LeaseSchedule
from ..core.results import OptBounds, RunResult
from ..core.timeline import run_online
from ..deadlines import (
    OnlineSCLD,
    make_old_instance,
    optimal_dp,
    periodic_scld_instance,
    random_scld_instance,
    run_old,
    tight_example,
)
from ..extensions import (
    ForecastParkingPermit,
    HedgedForecastParkingPermit,
    NoisyOracle,
)
from ..facility import make_instance as make_facility_instance
from ..facility import optimum as facility_optimum
from ..facility import run_facility_leasing
from ..lp import opt_bounds
from ..parking import (
    DeterministicParkingPermit,
    make_instance as make_parking_instance,
    optimal_interval,
)
from ..setcover import (
    OnlineSetCoverWithRepetitions,
    OnlineSetMulticoverLeasing,
    optimum as setcover_optimum,
    random_classic_multicover_instance,
    random_instance,
    random_repetitions_instance,
)
from ..workloads import (
    burst_days,
    constant_batches,
    deadline_arrivals,
    exponential_batches,
    make_rng,
    nonincreasing_batches,
    polynomial_batches,
)
from .scenarios import Scenario, register


def _fixed_instance_hooks(builder, optimum_fn):
    """Build/optimum hooks for scenarios whose instance ignores the seed.

    The instance is constructed once and reused for every replay seed,
    and its exact offline baseline (ILP/MILP/DP) is solved once —
    restoring the pre-port benchmarks' one-solve-per-sweep-point cost
    instead of re-solving per coin seed (pool workers memoize per
    process).  An instance built by hand still resolves through
    ``optimum_fn`` uncached.
    """
    cache: dict = {}

    def build(seed: int):
        if "instance" not in cache:
            cache["instance"] = builder()
        return cache["instance"]

    def optimum(instance):
        if instance is cache.get("instance"):
            if "opt" not in cache:
                cache["opt"] = optimum_fn(instance)
            return cache["opt"]
        return optimum_fn(instance)

    return build, optimum


# ----------------------------------------------------------------------
# E6 — set multicover leasing sweep points (Theorem 3.3)
# ----------------------------------------------------------------------
#: (tag, instance parameters) per Theorem 3.3 sweep point: n with
#: (delta, K) fixed, delta (memberships) with (n, K) fixed, K with
#: (n, delta) fixed.  The rng seeds are the benchmark's fixed draws.
E06_POINTS: tuple[tuple[str, dict], ...] = (
    *(
        (
            f"n{n}",
            dict(
                num_elements=n,
                num_sets=max(4, n // 2),
                memberships=3,
                num_types=2,
                rng_seed=100 + n,
            ),
        )
        for n in (6, 12, 24, 48)
    ),
    *(
        (
            f"d{memberships}",
            dict(
                num_elements=12,
                num_sets=8,
                memberships=memberships,
                num_types=2,
                rng_seed=200 + memberships,
            ),
        )
        for memberships in (2, 4, 6)
    ),
    *(
        (
            f"K{num_types}",
            dict(
                num_elements=12,
                num_sets=8,
                memberships=3,
                num_types=num_types,
                rng_seed=300,
            ),
        )
        for num_types in (1, 2, 3, 4)
    ),
)


def _e06_scenario(tag: str, params: dict) -> Scenario:
    schedule = LeaseSchedule.power_of_two(params["num_types"])

    def build_instance():
        # The paper fixes each sweep point's instance; the replay seed is
        # the algorithm's coin seed.
        return random_instance(
            num_elements=params["num_elements"],
            num_sets=params["num_sets"],
            memberships=params["memberships"],
            schedule=schedule,
            horizon=24,
            num_demands=24,
            rng=make_rng(params["rng_seed"]),
            max_coverage=2,
        )

    build, optimum = _fixed_instance_hooks(build_instance, setcover_optimum)

    def run(instance, seed: int) -> RunResult:
        algorithm = OnlineSetMulticoverLeasing(instance, seed=seed)
        return run_online(
            algorithm,
            instance.demands,
            name="set multicover leasing (Alg 3+4)",
        )

    return Scenario(
        name=f"setcover-e06-{tag}",
        family="setcover",
        workload="e06",
        description=(
            f"E6 sweep point {tag}: n={params['num_elements']} "
            f"m={params['num_sets']} K={params['num_types']}, "
            "fixed draw, seed = coin seed"
        ),
        build=build,
        run=run,
        verify=lambda instance, result: verify_multicover(
            instance, list(result.leases)
        ),
        optimum=optimum,
        paper_result="Thm 3.3",
    )


E06_SCENARIOS: tuple[str, ...] = tuple(
    register(_e06_scenario(tag, params)).name for tag, params in E06_POINTS
)


# ----------------------------------------------------------------------
# E7 — classical online set multicover via K=1 (Corollary 3.4)
# ----------------------------------------------------------------------
E07_SIZES: tuple[int, ...] = (8, 16, 32)


def _e07_scenario(num_elements: int) -> Scenario:
    def build_instance():
        # Fixed instance per n (drawn from rng seed n); seed = coin seed.
        return random_classic_multicover_instance(
            num_elements, make_rng(num_elements)
        )

    build, optimum = _fixed_instance_hooks(build_instance, setcover_optimum)

    def run(instance, seed: int) -> RunResult:
        algorithm = OnlineSetMulticoverLeasing(instance, seed=seed)
        return run_online(
            algorithm,
            instance.demands,
            name="online set multicover (K=1, Cor 3.4)",
        )

    return Scenario(
        name=f"setcover-e07-n{num_elements}",
        family="setcover",
        workload="e07",
        description=(
            f"E7 classical multicover, n={num_elements}, K=1 infinite "
            "lease, fixed draw, seed = coin seed"
        ),
        build=build,
        run=run,
        verify=lambda instance, result: verify_multicover(
            instance, list(result.leases)
        ),
        optimum=optimum,
        paper_result="Cor 3.4",
    )


E07_SCENARIOS: tuple[str, ...] = tuple(
    register(_e07_scenario(n)).name for n in E07_SIZES
)


# ----------------------------------------------------------------------
# E8 — online set cover with repetitions (Corollary 3.5)
# ----------------------------------------------------------------------
E08_SIZES: tuple[tuple[int, int], ...] = ((6, 12), (12, 24), (24, 36))


def _e08_scenario(num_elements: int, arrivals: int) -> Scenario:
    def build_instance():
        # Fixed stream per n (drawn from rng seed n); seed = coin seed.
        return random_repetitions_instance(
            num_elements, arrivals, make_rng(num_elements)
        )

    build, optimum = _fixed_instance_hooks(
        # Exact baseline: the multicover rewriting of the same stream.
        build_instance,
        lambda instance: setcover_optimum(instance.rewritten()),
    )

    def run(instance, seed: int) -> RunResult:
        algorithm = OnlineSetCoverWithRepetitions(instance.base, seed=seed)
        # Fed directly: stream items are bare (element, t) pairs, which
        # run_online's arrival ordering check cannot interpret.
        for demand in instance.stream:
            algorithm.on_demand(demand)
        return RunResult(
            algorithm="set cover with repetitions (Cor 3.5)",
            cost=algorithm.cost,
            leases=tuple(algorithm.leases),
            num_demands=len(instance.stream),
            detail={"assignments": tuple(algorithm.assignments)},
        )

    return Scenario(
        name=f"setcover-e08-n{num_elements}",
        family="setcover",
        workload="e08",
        description=(
            f"E8 repetitions, n={num_elements} x {arrivals} arrivals, "
            "fixed stream, seed = coin seed"
        ),
        build=build,
        run=run,
        verify=lambda instance, result: verify_repetitions(
            instance,
            list(result.detail["assignments"]),
            list(result.leases),
        ),
        optimum=optimum,
        paper_result="Cor 3.5",
    )


E08_SCENARIOS: tuple[str, ...] = tuple(
    register(_e08_scenario(n, arrivals)).name for n, arrivals in E08_SIZES
)


# ----------------------------------------------------------------------
# E9 — facility leasing by arrival pattern (Theorem 4.5, Cors 4.6–4.7)
# ----------------------------------------------------------------------
E09_PATTERNS: tuple[str, ...] = (
    "constant",
    "nonincreasing",
    "polynomial",
    "exponential",
)

_E09_STEPS = 8
_E09_FACILITIES = 4


def e09_batches(pattern: str) -> list[int]:
    """The Corollary 4.7 arrival pattern behind ``facility-e09-<pattern>``."""
    rng = make_rng(5)
    if pattern == "constant":
        return constant_batches(_E09_STEPS, 2)
    if pattern == "nonincreasing":
        return nonincreasing_batches(_E09_STEPS, 6, rng)
    if pattern == "polynomial":
        return [min(size, 12) for size in polynomial_batches(_E09_STEPS, 1)]
    return [min(size, 24) for size in exponential_batches(6)]


def _e09_scenario(pattern: str) -> Scenario:
    schedule = LeaseSchedule.power_of_two(3)

    def build_instance():
        # Fixed instance per pattern; the two-phase algorithm is
        # deterministic, so the replay seed plays no role.
        return make_facility_instance(
            schedule,
            num_facilities=_E09_FACILITIES,
            batch_sizes=e09_batches(pattern),
            rng=make_rng(42),
        )

    build, optimum = _fixed_instance_hooks(build_instance, facility_optimum)

    def run(instance, seed: int) -> RunResult:
        algorithm = run_facility_leasing(instance)
        return RunResult(
            algorithm="facility two-phase online (Ch. 4)",
            cost=algorithm.cost,
            leases=tuple(algorithm.leases),
            num_demands=instance.num_clients,
            detail={
                "connections": tuple(algorithm.connections),
                "leasing_cost": algorithm.leasing_cost,
                "connection_cost": algorithm.connection_cost,
            },
        )

    return Scenario(
        name=f"facility-e09-{pattern}",
        family="facility",
        workload="e09",
        description=(
            f"E9 facility leasing, {_E09_FACILITIES} sites K=3, "
            f"{pattern} client batches (fixed draw)"
        ),
        build=build,
        run=run,
        verify=lambda instance, result: verify_facility(
            instance, list(result.leases), list(result.detail["connections"])
        ),
        optimum=optimum,
        paper_result="Thm 4.5 / Cor 4.7",
    )


E09_SCENARIOS: tuple[str, ...] = tuple(
    register(_e09_scenario(pattern)).name for pattern in E09_PATTERNS
)


# ----------------------------------------------------------------------
# E10 — OLD competitive ratios (Theorem 5.3)
# ----------------------------------------------------------------------
#: (tag, regime parameters): u<d> = uniform slack d, s<d> = non-uniform
#: slack drawn in [0, d].
E10_POINTS: tuple[tuple[str, dict], ...] = (
    *(
        (f"u{slack}", dict(max_slack=0, uniform_slack=slack))
        for slack in (0, 2, 4, 8)
    ),
    *(
        (f"s{max_slack}", dict(max_slack=max_slack, uniform_slack=None))
        for max_slack in (2, 6, 12, 24)
    ),
)

_E10_HORIZON = 200


def _e10_scenario(tag: str, params: dict) -> Scenario:
    schedule = LeaseSchedule.power_of_two(3)

    def build(seed: int):
        # The replay seed draws the instance (OLD is deterministic); the
        # benchmark takes the worst ratio over draws.
        clients = deadline_arrivals(
            _E10_HORIZON,
            0.35,
            max_slack=params["max_slack"],
            rng=make_rng(seed),
            uniform_slack=params["uniform_slack"],
        )
        return make_old_instance(schedule, clients or [(0, 0)]).normalized()

    def run(instance, seed: int) -> RunResult:
        algorithm = run_old(instance)
        return RunResult(
            algorithm="OLD primal-dual (Ch. 5)",
            cost=algorithm.cost,
            leases=tuple(algorithm.leases),
            num_demands=len(instance.clients),
        )

    regime = "uniform" if params["uniform_slack"] is not None else "non-uniform"
    return Scenario(
        name=f"deadline-e10-{tag}",
        family="deadlines",
        workload="e10",
        description=(
            f"E10 OLD, K=3, {regime} slack "
            f"{params['uniform_slack'] if regime == 'uniform' else params['max_slack']}"
            ", seed = instance draw"
        ),
        build=build,
        run=run,
        verify=lambda instance, result: verify_old(
            instance, list(result.leases)
        ),
        optimum=lambda instance: OptBounds.exactly(
            optimal_dp(instance), method="dp"
        ),
        paper_result="Thm 5.3",
    )


E10_SCENARIOS: tuple[str, ...] = tuple(
    register(_e10_scenario(tag, params)).name for tag, params in E10_POINTS
)


# ----------------------------------------------------------------------
# E11 — the OLD tight example (Proposition 5.4 / Figure 5.3)
# ----------------------------------------------------------------------
#: (tag, (dmax, lmin)) — the Figure 5.3 points; fully deterministic.
E11_POINTS: tuple[tuple[str, tuple[int, int]], ...] = (
    ("d8", (8, 1)),
    ("d16", (16, 1)),
    ("d32", (32, 1)),
    ("d64", (64, 1)),
    ("d32l2", (32, 2)),
    ("d32l4", (32, 4)),
)


def _e11_scenario(tag: str, dmax: int, lmin: int) -> Scenario:
    build, optimum = _fixed_instance_hooks(
        # The construction is deterministic; every seed replays the same
        # tight interrogation.
        lambda: tight_example(dmax=dmax, lmin=lmin, epsilon=0.01),
        lambda instance: OptBounds.exactly(
            optimal_dp(instance), method="dp"
        ),
    )

    def run(instance, seed: int) -> RunResult:
        algorithm = run_old(instance)
        return RunResult(
            algorithm="OLD primal-dual (Ch. 5)",
            cost=algorithm.cost,
            leases=tuple(algorithm.leases),
            num_demands=len(instance.clients),
        )

    return Scenario(
        name=f"deadline-e11-{tag}",
        family="deadlines",
        workload="e11",
        description=(
            f"E11 Figure 5.3 tight example, dmax={dmax} lmin={lmin} "
            "(deterministic)"
        ),
        build=build,
        run=run,
        verify=lambda instance, result: verify_old(
            instance, list(result.leases)
        ),
        optimum=optimum,
        paper_result="Prop 5.4",
    )


E11_SCENARIOS: tuple[str, ...] = tuple(
    register(_e11_scenario(tag, dmax, lmin)).name
    for tag, (dmax, lmin) in E11_POINTS
)


# ----------------------------------------------------------------------
# E12 — SCLD sweep points (Theorem 5.7)
# ----------------------------------------------------------------------
#: (tag, point parameters): d<s> sweeps the slack budget at K=2, K<k>
#: sweeps the schedule size at slack 4.  The rng seeds are the
#: benchmark's fixed draws.
E12_POINTS: tuple[tuple[str, dict], ...] = (
    *(
        (f"d{max_slack}", dict(num_types=2, max_slack=max_slack, rng_seed=max_slack))
        for max_slack in (0, 2, 6, 12)
    ),
    *(
        (f"K{num_types}", dict(num_types=num_types, max_slack=4, rng_seed=50 + num_types))
        for num_types in (1, 2, 3)
    ),
)


def _scld_run(instance, seed: int) -> RunResult:
    algorithm = OnlineSCLD(instance, seed=seed)
    return run_online(algorithm, instance.demands, name="SCLD (Alg 5)")


def _e12_scenario(tag: str, params: dict) -> Scenario:
    schedule = LeaseSchedule.power_of_two(params["num_types"])

    def build_instance():
        # Fixed instance per sweep point; seed = threshold coin seed.
        return random_scld_instance(
            schedule,
            num_elements=12,
            num_sets=8,
            memberships=3,
            horizon=32,
            num_demands=24,
            max_slack=params["max_slack"],
            rng=make_rng(params["rng_seed"]),
        )

    build, optimum = _fixed_instance_hooks(
        build_instance,
        lambda instance: opt_bounds(instance.to_covering_program()),
    )

    return Scenario(
        name=f"deadline-e12-{tag}",
        family="deadlines",
        workload="e12",
        description=(
            f"E12 SCLD, n=12 m=8 K={params['num_types']} "
            f"dmax={params['max_slack']}, fixed draw, seed = coin seed"
        ),
        build=build,
        run=_scld_run,
        verify=lambda instance, result: verify_scld(
            instance, list(result.leases)
        ),
        optimum=optimum,
        paper_result="Thm 5.7",
    )


E12_SCENARIOS: tuple[str, ...] = tuple(
    register(_e12_scenario(tag, params)).name for tag, params in E12_POINTS
)


# ----------------------------------------------------------------------
# E13 — SCLD time independence (Corollary 5.8)
# ----------------------------------------------------------------------
E13_HORIZONS: tuple[int, ...] = (16, 32, 64, 128)


def _e13_scenario(horizon: int) -> Scenario:
    schedule = LeaseSchedule.power_of_two(2)  # lmax fixed at 2

    def build_instance():
        # One fixed system (rng seed 7) per horizon — the time-shifted
        # pairs: each doubling only extends the demand stream, so any
        # ratio growth would be a time dependence.  seed = coin seed.
        return periodic_scld_instance(
            schedule,
            num_elements=10,
            num_sets=8,
            memberships=3,
            horizon=horizon,
            rng=make_rng(7),
        )

    build, optimum = _fixed_instance_hooks(
        build_instance,
        lambda instance: opt_bounds(
            instance.to_covering_program(), exact_variable_limit=6000
        ),
    )

    return Scenario(
        name=f"deadline-e13-h{horizon}",
        family="deadlines",
        workload="e13",
        description=(
            f"E13 SCLD time independence, horizon {horizon}, lmax=2, "
            "fixed draw, seed = coin seed"
        ),
        build=build,
        run=_scld_run,
        verify=lambda instance, result: verify_scld(
            instance, list(result.leases)
        ),
        optimum=optimum,
        paper_result="Cor 5.8",
    )


E13_SCENARIOS: tuple[str, ...] = tuple(
    register(_e13_scenario(horizon)).name for horizon in E13_HORIZONS
)


# ----------------------------------------------------------------------
# E15 — prediction-augmented leasing (Sections 3.5/5.6 outlook)
# ----------------------------------------------------------------------
E15_ERRORS: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 1.0)

_E15_SCHEDULE = LeaseSchedule.power_of_two(4, cost_growth=1.5)

# One fixed bursty instance shared by the whole family; the replay seed
# seeds the oracle noise.
_e15_build, _e15_optimum = _fixed_instance_hooks(
    lambda: make_parking_instance(
        _E15_SCHEDULE, burst_days(240, 5, 12, make_rng(4))
    ),
    lambda instance: OptBounds.exactly(
        optimal_interval(instance).cost, method="dp-interval"
    ),
)


def _e15_scenario(policy: str, error: float) -> Scenario:
    tag = f"e{int(error * 100)}"

    def run(instance, seed: int) -> RunResult:
        oracle = NoisyOracle(instance, error, make_rng(1000 + seed))
        if policy == "pure":
            algorithm = ForecastParkingPermit(_E15_SCHEDULE, oracle)
        else:
            algorithm = HedgedForecastParkingPermit(
                _E15_SCHEDULE, oracle, hedge=1.0
            )
        return run_online(
            algorithm,
            instance.rainy_days,
            name=f"forecast {policy} (err {error:g})",
        )

    return Scenario(
        name=f"forecast-{policy}-{tag}",
        family="forecast",
        workload="e15",
        description=(
            f"E15 {policy} forecast policy, oracle error {error:g}, "
            "K=4 bursty days, seed = noise seed"
        ),
        build=_e15_build,
        run=run,
        verify=lambda instance, result: verify_parking(
            instance, list(result.leases)
        ),
        optimum=_e15_optimum,
        paper_result="Secs 3.5/5.6",
    )


def _e15_baseline() -> Scenario:
    def run(instance, seed: int) -> RunResult:
        return run_online(
            DeterministicParkingPermit(_E15_SCHEDULE),
            instance.rainy_days,
            name="parking primal-dual (Alg 1)",
        )

    return Scenario(
        name="forecast-primal-dual",
        family="forecast",
        workload="e15",
        description=(
            "E15 prediction-free primal-dual baseline on the same "
            "bursty instance (deterministic)"
        ),
        build=_e15_build,
        run=run,
        verify=lambda instance, result: verify_parking(
            instance, list(result.leases)
        ),
        optimum=_e15_optimum,
        paper_result="Secs 3.5/5.6",
    )


E15_PURE_SCENARIOS: tuple[str, ...] = tuple(
    register(_e15_scenario("pure", error)).name for error in E15_ERRORS
)

E15_HEDGED_SCENARIOS: tuple[str, ...] = tuple(
    register(_e15_scenario("hedged", error)).name for error in E15_ERRORS
)

E15_BASELINE_SCENARIO: str = register(_e15_baseline()).name

E15_SCENARIOS: tuple[str, ...] = (
    *E15_PURE_SCENARIOS,
    *E15_HEDGED_SCENARIOS,
    E15_BASELINE_SCENARIO,
)


# ----------------------------------------------------------------------
# The experiment index: every E row -> its scenarios
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentEntry:
    """One row of the experiment-to-engine map.

    Attributes:
        ident: experiment id, ``"E1"`` .. ``"E15"``.
        module: the ``benchmarks/`` module that renders the sweep.
        claim: the paper claim the experiment measures.
        scenarios: the scenario names the experiment replays.
        registrar: for experiments whose sweep points are registered
            ad hoc at benchmark-module import (E1–E5, E14), the module
            to import before resolving ``scenarios``; ``None`` for the
            families registered here.
    """

    ident: str
    module: str
    claim: str
    scenarios: tuple[str, ...]
    registrar: str | None = None


EXPERIMENT_INDEX: tuple[ExperimentEntry, ...] = (
    ExperimentEntry(
        "E1",
        "bench_e01_parking_deterministic",
        "Theorem 2.7: deterministic parking permit is O(K)-competitive",
        tuple(f"bench-e01-K{k}" for k in (1, 2, 3, 4, 6, 8)),
        registrar="bench_e01_parking_deterministic",
    ),
    ExperimentEntry(
        "E2",
        "bench_e02_parking_randomized",
        "Section 2.2.3: randomized parking permit is O(log K)-competitive",
        tuple(f"bench-e02-K{k}" for k in (2, 4, 6, 8)),
        registrar="bench_e02_parking_randomized",
    ),
    ExperimentEntry(
        "E3",
        "bench_e03_parking_lb_deterministic",
        "Theorem 2.8: the adaptive adversary forces ratio Omega(K)",
        tuple(f"bench-e03-K{k}" for k in (1, 2, 3, 4)),
        registrar="bench_e03_parking_lb_deterministic",
    ),
    ExperimentEntry(
        "E4",
        "bench_e04_parking_lb_randomized",
        "Theorem 2.9: the recursive random instance family",
        tuple(
            f"bench-e04-{variant}-K{k}"
            for variant in ("det", "rand")
            for k in (2, 3, 4, 5)
        ),
        registrar="bench_e04_parking_lb_randomized",
    ),
    ExperimentEntry(
        "E5",
        "bench_e05_interval_model",
        "Lemma 2.6 / Figure 2.3: the interval model costs at most 4x",
        tuple(f"bench-e05-{s}" for s in ("coarse", "fine", "steep")),
        registrar="bench_e05_interval_model",
    ),
    ExperimentEntry(
        "E6",
        "bench_e06_set_multicover_leasing",
        "Theorem 3.3: SetMulticoverLeasing is O(log(delta K) log n)",
        E06_SCENARIOS,
    ),
    ExperimentEntry(
        "E7",
        "bench_e07_online_set_multicover",
        "Corollary 3.4: OnlineSetMulticover via K=1 and an infinite lease",
        E07_SCENARIOS,
    ),
    ExperimentEntry(
        "E8",
        "bench_e08_repetitions",
        "Corollary 3.5: OnlineSetCoverWithRepetitions",
        E08_SCENARIOS,
    ),
    ExperimentEntry(
        "E9",
        "bench_e09_facility_leasing",
        "Theorem 4.5 / Corollaries 4.6-4.7: facility leasing vs arrivals",
        E09_SCENARIOS,
    ),
    ExperimentEntry(
        "E10",
        "bench_e10_old",
        "Theorem 5.3: OLD is O(K) uniform / O(K + dmax/lmin) non-uniform",
        E10_SCENARIOS,
    ),
    ExperimentEntry(
        "E11",
        "bench_e11_old_tight",
        "Proposition 5.4 / Figure 5.3: the tight example, measured",
        E11_SCENARIOS,
    ),
    ExperimentEntry(
        "E12",
        "bench_e12_scld",
        "Theorem 5.7: SCLD is O(log(m(K + dmax/lmin)) log lmax)",
        E12_SCENARIOS,
    ),
    ExperimentEntry(
        "E13",
        "bench_e13_time_independence",
        "Corollary 5.8: SCLD's ratio is time-independent",
        E13_SCENARIOS,
    ),
    ExperimentEntry(
        "E14",
        "bench_e14_heuristic_baselines",
        "Intro economics: primal-dual vs naive policies",
        tuple(
            f"bench-e14-{workload}-{policy}"
            for workload in ("bursty", "sparse", "mixed")
            for policy in (
                "primal-dual",
                "always-shortest",
                "always-longest",
                "rent-then-buy",
            )
        ),
        registrar="bench_e14_heuristic_baselines",
    ),
    ExperimentEntry(
        "E15",
        "bench_e15_forecast",
        "Extension: prediction-augmented leasing vs oracle error",
        E15_SCENARIOS,
    ),
)


def experiment(ident: str) -> ExperimentEntry:
    """Look an experiment up by id (``"E6"``)."""
    for entry in EXPERIMENT_INDEX:
        if entry.ident == ident:
            return entry
    raise KeyError(f"unknown experiment {ident!r}")
