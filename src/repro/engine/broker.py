"""A multi-tenant lease broker backed by any online leasing policy.

:class:`LeaseBroker` is the service layer of the reproduction: tenants
``acquire`` resources, ``renew`` running grants, and ``release`` them;
the broker maps every request onto a per-resource
:class:`~repro.core.framework.OnlineLeasingAlgorithm` (Meyerson's
deterministic primal-dual by default) which makes the actual
rent-or-buy decision.  The service surface —
``acquire / renew / release / active_leases / force_release`` — mirrors
the lease-service APIs of orchestration systems (list active grants,
admin force-release for stuck tenants), with simulated integer days in
place of wall-clock timestamps.

Two heap indexes keep every operation O(log n) regardless of how many
leases the policies accumulate:

* a *grant* expiry heap ``(expires_at, grant_id)`` — grants auto-expire
  the moment the clock passes them, without scanning the grant table;
* a per-resource *coverage* heap of active policy leases — the broker
  finds the furthest-covering lease for a request by popping expired
  windows, never by rescanning the policy's whole purchase history.

The broker consumes the typed events of :mod:`repro.engine.events`
(:func:`replay_trace`), which is how ``python -m repro engine replay``
and the throughput benchmark drive it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..core.framework import OnlineLeasingAlgorithm
from ..core.lease import Lease, LeaseSchedule
from ..core.store import LeaseStore
from ..errors import ModelError
from ..parking.deterministic import DeterministicParkingPermit
from .events import Acquire, Event, Release, Tick


@dataclass(frozen=True, slots=True)
class LeaseGrant:
    """An immutable snapshot of one grant, as returned to tenants.

    ``expires_at`` is exclusive, like a lease's ``end``: the grant is
    live on days ``acquired_at .. expires_at - 1``.
    """

    grant_id: int
    tenant: str
    resource: int
    acquired_at: int
    expires_at: int
    released_at: int | None = None

    @property
    def is_active(self) -> bool:
        """Whether the grant was still live when the snapshot was taken."""
        return self.released_at is None


@dataclass
class BrokerStats:
    """Event counters accumulated over a broker's lifetime."""

    events: int = 0
    acquires: int = 0
    renewals: int = 0
    releases: int = 0
    noop_releases: int = 0
    expirations: int = 0
    force_releases: int = 0
    ticks: int = 0


@dataclass
class _Grant:
    """Mutable broker-side grant record (snapshots go out, this stays in)."""

    grant_id: int
    tenant: str
    resource: int
    acquired_at: int
    expires_at: int
    released_at: int | None = None

    def snapshot(self) -> LeaseGrant:
        return LeaseGrant(
            grant_id=self.grant_id,
            tenant=self.tenant,
            resource=self.resource,
            acquired_at=self.acquired_at,
            expires_at=self.expires_at,
            released_at=self.released_at,
        )


@dataclass
class _Coverage:
    """Per-resource view of the backing policy's active lease windows."""

    policy: OnlineLeasingAlgorithm
    seen: int = 0
    # Max-heap by lease end: (-end, sequence). Only ends matter here;
    # the policy's store remains the ledger of record.
    heap: list[tuple[int, int]] = field(default_factory=list)
    pushed: int = 0


PolicyFactory = Callable[[int], OnlineLeasingAlgorithm]


class LeaseBroker:
    """Multi-tenant acquire/renew/release service over online leasing.

    Args:
        schedule: lease types available to the default policy.
        policy_factory: ``resource -> OnlineLeasingAlgorithm`` override;
            each resource gets its own policy instance (its own store and
            primal-dual state).  Defaults to
            :class:`~repro.parking.DeterministicParkingPermit` on
            ``schedule``, the O(K)-competitive choice.

    Tenants share the leases a policy buys: two tenants acquiring the
    same resource on the same day are covered by one purchase, which is
    exactly the economies-of-scale the leasing model monetises.  Time is
    a monotone integer clock; feeding an event older than the clock is a
    :class:`~repro.errors.ModelError`, matching ``run_online``'s
    non-decreasing-arrival contract.
    """

    def __init__(
        self,
        schedule: LeaseSchedule,
        policy_factory: PolicyFactory | None = None,
    ):
        self.schedule = schedule
        self._policy_factory = policy_factory or (
            lambda resource: DeterministicParkingPermit(schedule)
        )
        self._coverage: dict[int, _Coverage] = {}
        self._grants: dict[int, _Grant] = {}
        self._active: dict[tuple[str, int], int] = {}
        self._grant_heap: list[tuple[int, int]] = []
        self._clock = 0
        self._next_grant_id = 1
        self.stats = BrokerStats()

    # ------------------------------------------------------------------
    # Clock and expiry
    # ------------------------------------------------------------------
    @property
    def clock(self) -> int:
        """The latest event time seen so far."""
        return self._clock

    def _advance(self, now: int) -> None:
        if now < self._clock:
            raise ModelError(
                "events must arrive in non-decreasing time order: "
                f"saw {now} after {self._clock}"
            )
        self._clock = now
        self._expire(now)

    def _expire(self, now: int) -> None:
        """Retire every grant whose window ended by ``now`` (O(log n) each)."""
        while self._grant_heap and self._grant_heap[0][0] <= now:
            expires_at, grant_id = heapq.heappop(self._grant_heap)
            grant = self._grants.get(grant_id)
            if (
                grant is None
                or grant.released_at is not None
                or grant.expires_at != expires_at
            ):
                continue  # stale heap entry: renewed or already closed
            grant.released_at = expires_at
            del self._active[(grant.tenant, grant.resource)]
            self.stats.expirations += 1

    # ------------------------------------------------------------------
    # Coverage bookkeeping
    # ------------------------------------------------------------------
    def _coverage_of(self, resource: int) -> _Coverage:
        coverage = self._coverage.get(resource)
        if coverage is None:
            coverage = _Coverage(policy=self._policy_factory(resource))
            self._coverage[resource] = coverage
        return coverage

    def _covered_until(
        self, resource: int, coverage: _Coverage, now: int
    ) -> int:
        """Exclusive end of the furthest active lease window at ``now``.

        New policy purchases are ingested incrementally (each lease is
        pushed once); windows that ended are popped.  Every lease a
        policy buys for a demand at ``now`` starts at or before ``now``,
        so any un-popped entry with ``end > now`` covers ``now``.
        """
        store = getattr(coverage.policy, "store", None)
        if isinstance(store, LeaseStore):
            fresh: Iterable[Lease] = store.leases_since(coverage.seen)
            coverage.seen = len(store)
        else:
            leases = coverage.policy.leases
            fresh = leases[coverage.seen:]
            coverage.seen = len(leases)
        for lease in fresh:
            heapq.heappush(coverage.heap, (-lease.end, coverage.pushed))
            coverage.pushed += 1
        while coverage.heap and -coverage.heap[0][0] <= now:
            heapq.heappop(coverage.heap)
        if not coverage.heap:
            raise ModelError(
                f"policy {type(coverage.policy).__name__} for resource "
                f"{resource} bought no lease covering day {now}"
            )
        return -coverage.heap[0][0]

    # ------------------------------------------------------------------
    # Service surface
    # ------------------------------------------------------------------
    def acquire(self, tenant: str, resource: int, now: int) -> LeaseGrant:
        """Grant ``tenant`` the resource from day ``now``.

        Feeds the demand to the resource's policy (which may buy leases)
        and returns a grant running until the furthest covering lease
        expires.  Acquiring a resource the tenant already holds renews
        the existing grant instead of opening a second one.
        """
        self._advance(now)
        existing = self._active.get((tenant, resource))
        if existing is not None:
            return self._renew(self._grants[existing], now)
        coverage = self._coverage_of(resource)
        coverage.policy.on_demand(now)
        expires_at = self._covered_until(resource, coverage, now)
        grant = _Grant(
            grant_id=self._next_grant_id,
            tenant=tenant,
            resource=resource,
            acquired_at=now,
            expires_at=expires_at,
        )
        self._next_grant_id += 1
        self._grants[grant.grant_id] = grant
        self._active[(tenant, resource)] = grant.grant_id
        heapq.heappush(self._grant_heap, (expires_at, grant.grant_id))
        self.stats.acquires += 1
        self.stats.events += 1
        return grant.snapshot()

    def renew(self, tenant: str, resource: int, now: int) -> LeaseGrant:
        """Extend the tenant's running grant through day ``now``.

        The demand is re-fed to the policy, which decides — per its own
        rent-or-buy rule — whether a new lease is needed; the grant's
        expiry moves to the furthest covering lease.
        """
        self._advance(now)
        grant_id = self._active.get((tenant, resource))
        if grant_id is None:
            raise ModelError(
                f"{tenant!r} holds no active grant on resource {resource} "
                f"at day {now}"
            )
        return self._renew(self._grants[grant_id], now)

    def _renew(self, grant: _Grant, now: int) -> LeaseGrant:
        coverage = self._coverage_of(grant.resource)
        coverage.policy.on_demand(now)
        expires_at = max(
            grant.expires_at,
            self._covered_until(grant.resource, coverage, now),
        )
        if expires_at != grant.expires_at:
            grant.expires_at = expires_at
            heapq.heappush(self._grant_heap, (expires_at, grant.grant_id))
        self.stats.renewals += 1
        self.stats.events += 1
        return grant.snapshot()

    def release(
        self, tenant: str, resource: int, now: int
    ) -> LeaseGrant | None:
        """Close the tenant's grant; returns ``None`` if none is live.

        A missing grant is not an error: with short lease schedules a
        grant can expire before the tenant's planned release day, so
        replayed traces routinely release already-expired grants.  The
        underlying lease purchases are irrevocable either way — release
        only stops the *grant*, never refunds the policy.
        """
        self._advance(now)
        self.stats.events += 1
        grant_id = self._active.pop((tenant, resource), None)
        if grant_id is None:
            self.stats.noop_releases += 1
            return None
        grant = self._grants[grant_id]
        grant.released_at = now
        self.stats.releases += 1
        return grant.snapshot()

    def force_release(self, grant_id: int, now: int | None = None) -> LeaseGrant:
        """Admin action: close a grant by id regardless of tenant."""
        if now is not None:
            self._advance(now)
        grant = self._grants.get(grant_id)
        if grant is None:
            raise ModelError(f"unknown grant id {grant_id}")
        if grant.released_at is None:
            grant.released_at = self._clock
            self._active.pop((grant.tenant, grant.resource), None)
            self.stats.force_releases += 1
        self.stats.events += 1
        return grant.snapshot()

    def tick(self, now: int) -> None:
        """Advance the clock (expiring grants) without serving a request."""
        self._advance(now)
        self.stats.ticks += 1
        self.stats.events += 1

    def active_leases(
        self, resource: int | None = None, tenant: str | None = None
    ) -> tuple[LeaseGrant, ...]:
        """Snapshots of all live grants, optionally filtered, by grant id."""
        grants = sorted(self._active.values())
        out = []
        for grant_id in grants:
            grant = self._grants[grant_id]
            if resource is not None and grant.resource != resource:
                continue
            if tenant is not None and grant.tenant != tenant:
                continue
            out.append(grant.snapshot())
        return tuple(out)

    def grant(self, grant_id: int) -> LeaseGrant:
        """Snapshot of any grant, live or closed."""
        record = self._grants.get(grant_id)
        if record is None:
            raise ModelError(f"unknown grant id {grant_id}")
        return record.snapshot()

    # ------------------------------------------------------------------
    # Event dispatch and aggregate results
    # ------------------------------------------------------------------
    def handle(self, event: Event) -> LeaseGrant | None:
        """Dispatch one typed event; returns the grant it touched, if any."""
        if isinstance(event, Acquire):
            return self.acquire(event.tenant, event.resource, event.time)
        if isinstance(event, Release):
            return self.release(event.tenant, event.resource, event.time)
        if isinstance(event, Tick):
            self.tick(event.time)
            return None
        raise ModelError(f"cannot handle events of type {type(event).__name__}")

    @property
    def cost(self) -> float:
        """Total cost of every lease purchased across all resources."""
        return sum(c.policy.cost for c in self._coverage.values())

    @property
    def leases(self) -> tuple[Lease, ...]:
        """All purchased leases, re-keyed to their broker resource ids."""
        out: list[Lease] = []
        for resource, coverage in sorted(self._coverage.items()):
            for lease in coverage.policy.leases:
                out.append(
                    Lease(
                        resource=resource,
                        type_index=lease.type_index,
                        start=lease.start,
                        length=lease.length,
                        cost=lease.cost,
                    )
                )
        return tuple(out)

    @property
    def num_active(self) -> int:
        """Number of currently live grants."""
        return len(self._active)


def replay_trace(broker: LeaseBroker, events: Iterable[Event]) -> BrokerStats:
    """Feed a whole trace through the broker; returns its stats."""
    for event in events:
        broker.handle(event)
    return broker.stats
