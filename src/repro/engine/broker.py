"""A multi-tenant lease broker backed by any online leasing policy.

:class:`LeaseBroker` is the service layer of the reproduction: tenants
``acquire`` resources, ``renew`` running grants, and ``release`` them;
the broker maps every request onto a per-resource
:class:`~repro.core.framework.OnlineLeasingAlgorithm` (Meyerson's
deterministic primal-dual by default) which makes the actual
rent-or-buy decision.  The service surface —
``acquire / renew / release / active_leases / force_release`` — mirrors
the lease-service APIs of orchestration systems (list active grants,
admin force-release for stuck tenants), with simulated integer days in
place of wall-clock timestamps.

Three structures keep every operation O(log n) — and the common ones
O(1) — regardless of how many leases the policies accumulate:

* a *grant* expiry heap ``(expires_at, grant_id)`` — grants auto-expire
  the moment the clock passes them, without scanning the grant table;
* a per-resource *coverage horizon* ``covered_until`` — the furthest
  exclusive end any purchased lease reaches, maintained in O(1) from
  :meth:`~repro.core.store.LeaseStore.furthest_end` (or an incremental
  scan for storeless policies).  Requests on already-covered days take
  the O(1) fast path: no policy call, no heap maintenance (see
  *Coverage caching* below);
* a bounded *grant table*: closed grants beyond a retention window are
  compacted away, so million-event traces run in constant memory.

**Coverage caching.**  When ``coverage_caching`` is on (the default) and
a request arrives on a day the resource's purchases already cover, the
broker answers from ``covered_until`` without feeding the demand to the
policy.  This is exact for *lazy* policies — ones for which a demand on
a covered day never changes purchases or cost.  Every primal-dual
algorithm in the library is lazy (a covered day's dual cannot be
raised: some candidate is already tight), which the property tests pin
down by replaying randomized traces through cached and uncached brokers
and asserting identical grants, stats, and cost.  Policies that consume
randomness or mutate state on every demand should disable it.

**Ownership and concurrency contract.**  A broker is *single-owner*
mutable state: no method is locked or reentrant, and the clock must be
driven in non-decreasing order by exactly one caller at a time.
Concurrency lives strictly *above* this class — the serving layer
(:mod:`repro.serve`) gives each resource shard its own broker and
funnels every mutation through that shard's single dispatch task,
ratcheting stale request times up to the broker clock before calling in.
Sharing one broker between threads or event-loop tasks without such a
serialization layer is a bug, not a supported mode.

The broker consumes the typed events of :mod:`repro.engine.events`
(:func:`replay_trace`), which is how ``python -m repro engine replay``
and the throughput benchmark drive it.
"""

from __future__ import annotations

import heapq
from dataclasses import asdict, dataclass
from typing import Callable, Iterable

from ..core.framework import OnlineLeasingAlgorithm
from ..core.lease import Lease, LeaseSchedule
from ..core.store import LeaseStore
from ..errors import ModelError
from ..parking.deterministic import DeterministicParkingPermit
from .events import Acquire, Event, Release, Tick

#: Closed grants retained before compaction, unless overridden.  Active
#: grants are never compacted; the bound only trims history.
DEFAULT_MAX_CLOSED_GRANTS = 262_144


@dataclass(frozen=True, slots=True)
class LeaseGrant:
    """An immutable snapshot of one grant, as returned to tenants.

    ``expires_at`` is exclusive, like a lease's ``end``: the grant is
    live on days ``acquired_at .. expires_at - 1``.
    """

    grant_id: int
    tenant: str
    resource: int
    acquired_at: int
    expires_at: int
    released_at: int | None = None

    @property
    def is_active(self) -> bool:
        """Whether the grant was still live when the snapshot was taken."""
        return self.released_at is None


@dataclass
class BrokerStats:
    """Event counters accumulated over a broker's lifetime."""

    events: int = 0
    acquires: int = 0
    renewals: int = 0
    releases: int = 0
    noop_releases: int = 0
    expirations: int = 0
    force_releases: int = 0
    ticks: int = 0
    covered_fast_path: int = 0
    compactions: int = 0

    def as_dict(self) -> dict[str, int]:
        """Counter snapshot as a plain dict, in field order."""
        return asdict(self)

    def full_dict(self) -> dict[str, int]:
        """Every counter, operational ones included — the exporter surface.

        The metrics exporter (:mod:`repro.obs.export`) reads this rather
        than reaching into dataclass internals: it is the explicit
        "everything, including operational-only counters such as
        ``compactions``" view, free to grow new fields without touching
        :meth:`as_dict` (frozen alongside :meth:`mergeable` for
        shard-merge byte-identity).
        """
        return asdict(self)

    def mergeable(self) -> dict[str, int]:
        """The stats shape shard merges and served-vs-inline checks use.

        Everything in :meth:`as_dict` except ``compactions``, which
        counts broker-local housekeeping triggered by per-broker table
        size: an unsharded broker and its shard decomposition cross the
        compaction threshold at different points, so the counter is not
        a function of the trace partition and would spuriously break
        otherwise byte-identical merges at compaction scale.
        """
        stats = asdict(self)
        del stats["compactions"]
        return stats


@dataclass(slots=True)
class _Grant:
    """Mutable broker-side grant record (snapshots go out, this stays in)."""

    grant_id: int
    tenant: str
    resource: int
    acquired_at: int
    expires_at: int
    released_at: int | None = None

    def snapshot(self) -> LeaseGrant:
        return LeaseGrant(
            grant_id=self.grant_id,
            tenant=self.tenant,
            resource=self.resource,
            acquired_at=self.acquired_at,
            expires_at=self.expires_at,
            released_at=self.released_at,
        )


@dataclass(slots=True)
class _Coverage:
    """Per-resource view of the backing policy's purchases.

    ``covered_until`` is the furthest exclusive lease end the policy has
    reached — the resource's coverage horizon.  Every lease the policies
    buy for a demand at ``now`` starts at or before ``now``, so
    ``covered_until > now`` means the resource is covered at ``now``; no
    heap of individual windows is needed.  ``seen`` tracks how many
    leases of a *storeless* policy have been folded into the horizon.
    """

    policy: OnlineLeasingAlgorithm
    store: LeaseStore | None = None
    covered_until: int = 0
    seen: int = 0


PolicyFactory = Callable[[int], OnlineLeasingAlgorithm]


class LeaseBroker:
    """Multi-tenant acquire/renew/release service over online leasing.

    Args:
        schedule: lease types available to the default policy.
        policy_factory: ``resource -> OnlineLeasingAlgorithm`` override;
            each resource gets its own policy instance (its own store and
            primal-dual state).  Defaults to
            :class:`~repro.parking.DeterministicParkingPermit` on
            ``schedule``, the O(K)-competitive choice.
        coverage_caching: serve requests on already-covered days from the
            cached coverage horizon without calling the policy (exact for
            lazy policies; see the module docstring).
        max_closed_grants: closed grants retained before the grant table
            is compacted; ``None`` disables compaction entirely.
            Compacted grant ids become unknown to :meth:`grant`.

    Tenants share the leases a policy buys: two tenants acquiring the
    same resource on the same day are covered by one purchase, which is
    exactly the economies-of-scale the leasing model monetises.  Time is
    a monotone integer clock; feeding an event older than the clock is a
    :class:`~repro.errors.ModelError`, matching ``run_online``'s
    non-decreasing-arrival contract.
    """

    def __init__(
        self,
        schedule: LeaseSchedule,
        policy_factory: PolicyFactory | None = None,
        coverage_caching: bool = True,
        max_closed_grants: int | None = DEFAULT_MAX_CLOSED_GRANTS,
    ):
        if max_closed_grants is not None and max_closed_grants < 0:
            raise ModelError("max_closed_grants must be >= 0 or None")
        self.schedule = schedule
        self._policy_factory = policy_factory or (
            lambda resource: DeterministicParkingPermit(schedule)
        )
        self._coverage_caching = coverage_caching
        self._max_closed_grants = max_closed_grants
        self._coverage: dict[int, _Coverage] = {}
        self._grants: dict[int, _Grant] = {}
        self._active: dict[tuple[str, int], int] = {}
        self._grant_heap: list[tuple[int, int]] = []
        self._clock = 0
        self._next_grant_id = 1
        self._closed = 0
        self._leases_cache: tuple[tuple[int, int], tuple[Lease, ...]] | None = None
        self.stats = BrokerStats()

    # ------------------------------------------------------------------
    # Clock and expiry
    # ------------------------------------------------------------------
    @property
    def clock(self) -> int:
        """The latest event time seen so far."""
        return self._clock

    def _advance(self, now: int) -> None:
        if now < self._clock:
            raise ModelError(
                "events must arrive in non-decreasing time order: "
                f"saw {now} after {self._clock}"
            )
        self._clock = now
        heap = self._grant_heap
        if heap and heap[0][0] <= now:
            self._expire(now)

    def _expire(self, now: int) -> None:
        """Retire every grant whose window ended by ``now`` (O(log n) each)."""
        heap = self._grant_heap
        grants = self._grants
        while heap and heap[0][0] <= now:
            expires_at, grant_id = heapq.heappop(heap)
            grant = grants.get(grant_id)
            if (
                grant is None
                or grant.released_at is not None
                or grant.expires_at != expires_at
            ):
                continue  # stale heap entry: renewed or already closed
            grant.released_at = expires_at
            del self._active[(grant.tenant, grant.resource)]
            self.stats.expirations += 1
            self._note_closed()

    # ------------------------------------------------------------------
    # Grant-table compaction
    # ------------------------------------------------------------------
    def _note_closed(self) -> None:
        self._closed += 1
        limit = self._max_closed_grants
        if limit is not None and self._closed > 2 * limit:
            self.compact(limit)

    def compact(self, retain_closed: int | None = None) -> int:
        """Drop the oldest closed grants beyond a retention window.

        Returns how many grant records were discarded.  Active grants are
        untouched; so are the most recent ``retain_closed`` closed ones
        (default: the broker's ``max_closed_grants``).  Looking up a
        compacted grant id afterwards raises
        :class:`~repro.errors.ModelError`, exactly like an id that never
        existed — callers that need unbounded history keep it themselves
        or construct the broker with ``max_closed_grants=None``.
        """
        if retain_closed is None:
            retain_closed = self._max_closed_grants
        if retain_closed is None or self._closed <= retain_closed:
            return 0
        drop = self._closed - retain_closed
        doomed = []
        for grant_id, grant in self._grants.items():  # id == insertion order
            if grant.released_at is not None:
                doomed.append(grant_id)
                if len(doomed) == drop:
                    break
        for grant_id in doomed:
            del self._grants[grant_id]
        self._closed -= len(doomed)
        self.stats.compactions += 1
        return len(doomed)

    # ------------------------------------------------------------------
    # Coverage bookkeeping
    # ------------------------------------------------------------------
    def _coverage_of(self, resource: int) -> _Coverage:
        coverage = self._coverage.get(resource)
        if coverage is None:
            policy = self._policy_factory(resource)
            store = getattr(policy, "store", None)
            coverage = _Coverage(
                policy=policy,
                store=store if isinstance(store, LeaseStore) else None,
            )
            self._coverage[resource] = coverage
        return coverage

    def _covered_until(
        self, resource: int, coverage: _Coverage, now: int
    ) -> int:
        """Exclusive end of the furthest purchased lease window at ``now``.

        Every lease a policy buys for a demand at ``now`` starts at or
        before ``now``, so the furthest end — O(1) from the store's
        per-resource max, or an incremental scan of new purchases for
        storeless policies — covers ``now`` whenever it exceeds it.
        """
        store = coverage.store
        if store is not None:
            covered = store.furthest_end() or 0
        else:
            leases = coverage.policy.leases
            covered = coverage.covered_until
            for lease in leases[coverage.seen:]:
                end = lease.end
                if end > covered:
                    covered = end
            coverage.seen = len(leases)
        coverage.covered_until = covered
        if covered <= now:
            raise ModelError(
                f"policy {type(coverage.policy).__name__} for resource "
                f"{resource} bought no lease covering day {now}"
            )
        return covered

    # ------------------------------------------------------------------
    # Service surface
    # ------------------------------------------------------------------
    def acquire(self, tenant: str, resource: int, now: int) -> LeaseGrant:
        """Grant ``tenant`` the resource from day ``now``.

        Feeds the demand to the resource's policy (which may buy leases)
        and returns a grant running until the furthest covering lease
        expires.  Acquiring a resource the tenant already holds renews
        the existing grant instead of opening a second one.  Requests on
        already-covered days take the O(1) cached fast path.
        """
        return self._acquire(tenant, resource, now).snapshot()

    def _acquire(self, tenant: str, resource: int, now: int) -> _Grant:
        """The acquire core: returns the broker-side record, no snapshot."""
        if now < self._clock:
            self._advance(now)  # raises the ordering error
        self._clock = now
        heap = self._grant_heap
        if heap and heap[0][0] <= now:
            self._expire(now)
        existing = self._active.get((tenant, resource))
        if existing is not None:
            return self._renew(self._grants[existing], now)
        stats = self.stats
        coverage = self._coverage.get(resource)
        if coverage is None:
            coverage = self._coverage_of(resource)
        if self._coverage_caching and coverage.covered_until > now:
            expires_at = coverage.covered_until
            stats.covered_fast_path += 1
        else:
            coverage.policy.on_demand(now)
            store = coverage.store
            if store is not None and store.coverage_horizon > now:
                expires_at = coverage.covered_until = store.coverage_horizon
            else:
                expires_at = self._covered_until(resource, coverage, now)
        grant_id = self._next_grant_id
        self._next_grant_id = grant_id + 1
        grant = _Grant(
            grant_id=grant_id,
            tenant=tenant,
            resource=resource,
            acquired_at=now,
            expires_at=expires_at,
        )
        self._grants[grant_id] = grant
        self._active[(tenant, resource)] = grant_id
        heapq.heappush(heap, (expires_at, grant_id))
        stats.acquires += 1
        stats.events += 1
        return grant

    def renew(self, tenant: str, resource: int, now: int) -> LeaseGrant:
        """Extend the tenant's running grant through day ``now``.

        The demand is re-fed to the policy, which decides — per its own
        rent-or-buy rule — whether a new lease is needed; the grant's
        expiry moves to the furthest covering lease.
        """
        self._advance(now)
        grant_id = self._active.get((tenant, resource))
        if grant_id is None:
            raise ModelError(
                f"{tenant!r} holds no active grant on resource {resource} "
                f"at day {now}"
            )
        return self._renew(self._grants[grant_id], now).snapshot()

    def _renew(self, grant: _Grant, now: int) -> _Grant:
        stats = self.stats
        coverage = self._coverage_of(grant.resource)
        if self._coverage_caching and coverage.covered_until > now:
            # Covered fast path: the policy would be a no-op; the grant
            # can only extend to the cached horizon.
            covered = coverage.covered_until
            stats.covered_fast_path += 1
        else:
            coverage.policy.on_demand(now)
            store = coverage.store
            if store is not None and store.coverage_horizon > now:
                covered = coverage.covered_until = store.coverage_horizon
            else:
                covered = self._covered_until(grant.resource, coverage, now)
        if covered > grant.expires_at:
            grant.expires_at = covered
            heapq.heappush(self._grant_heap, (covered, grant.grant_id))
        stats.renewals += 1
        stats.events += 1
        return grant

    def release(
        self, tenant: str, resource: int, now: int
    ) -> LeaseGrant | None:
        """Close the tenant's grant; returns ``None`` if none is live.

        A missing grant is not an error: with short lease schedules a
        grant can expire before the tenant's planned release day, so
        replayed traces routinely release already-expired grants.  The
        underlying lease purchases are irrevocable either way — release
        only stops the *grant*, never refunds the policy.
        """
        grant = self._release(tenant, resource, now)
        return None if grant is None else grant.snapshot()

    def _release(self, tenant: str, resource: int, now: int) -> _Grant | None:
        """The release core: returns the broker-side record, no snapshot."""
        if now < self._clock:
            self._advance(now)  # raises the ordering error
        self._clock = now
        heap = self._grant_heap
        if heap and heap[0][0] <= now:
            self._expire(now)
        stats = self.stats
        stats.events += 1
        grant_id = self._active.pop((tenant, resource), None)
        if grant_id is None:
            stats.noop_releases += 1
            return None
        grant = self._grants[grant_id]
        grant.released_at = now
        stats.releases += 1
        self._note_closed()
        return grant

    def force_release(self, grant_id: int, now: int | None = None) -> LeaseGrant:
        """Admin action: close a grant by id regardless of tenant."""
        if now is not None:
            self._advance(now)
        grant = self._grants.get(grant_id)
        if grant is None:
            raise ModelError(f"unknown grant id {grant_id}")
        if grant.released_at is None:
            grant.released_at = self._clock
            self._active.pop((grant.tenant, grant.resource), None)
            self.stats.force_releases += 1
            self._note_closed()
        self.stats.events += 1
        return grant.snapshot()

    def tick(self, now: int) -> None:
        """Advance the clock (expiring grants) without serving a request."""
        self._advance(now)
        self.stats.ticks += 1
        self.stats.events += 1

    def active_leases(
        self, resource: int | None = None, tenant: str | None = None
    ) -> tuple[LeaseGrant, ...]:
        """Snapshots of all live grants, optionally filtered, by grant id.

        Filters narrow *before* ordering, so a query for one tenant or
        resource sorts only its own grants, not the whole active set.
        """
        grants = self._grants
        selected = [
            grant_id
            for key, grant_id in self._active.items()
            if (tenant is None or key[0] == tenant)
            and (resource is None or key[1] == resource)
        ]
        selected.sort()
        return tuple(grants[grant_id].snapshot() for grant_id in selected)

    def grant(self, grant_id: int) -> LeaseGrant:
        """Snapshot of any retained grant, live or closed.

        Closed grants older than the compaction window are gone; looking
        them up raises like any unknown id.
        """
        record = self._grants.get(grant_id)
        if record is None:
            raise ModelError(f"unknown grant id {grant_id}")
        return record.snapshot()

    # ------------------------------------------------------------------
    # Event dispatch and aggregate results
    # ------------------------------------------------------------------
    def handle(self, event: Event) -> LeaseGrant | None:
        """Dispatch one typed event; returns the grant it touched, if any."""
        kind = type(event)
        if kind is Acquire:
            return self.acquire(event.tenant, event.resource, event.time)
        if kind is Release:
            return self.release(event.tenant, event.resource, event.time)
        if kind is Tick:
            self.tick(event.time)
            return None
        raise ModelError(f"cannot handle events of type {type(event).__name__}")

    @property
    def cost(self) -> float:
        """Total cost of every lease purchased across all resources."""
        return sum(c.policy.cost for c in self._coverage.values())

    def _purchase_count(self) -> int:
        total = 0
        for coverage in self._coverage.values():
            if coverage.store is not None:
                total += len(coverage.store)
            else:
                total += len(coverage.policy.leases)
        return total

    @property
    def leases(self) -> tuple[Lease, ...]:
        """All purchased leases, re-keyed to their broker resource ids.

        Rebuilt only when the purchase count changed since the last
        access — stores are append-only, so ``(resources, purchases)``
        is a complete cache key.
        """
        key = (len(self._coverage), self._purchase_count())
        cached = self._leases_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        out: list[Lease] = []
        for resource, coverage in sorted(self._coverage.items()):
            for lease in coverage.policy.leases:
                out.append(
                    Lease(
                        resource=resource,
                        type_index=lease.type_index,
                        start=lease.start,
                        length=lease.length,
                        cost=lease.cost,
                    )
                )
        result = tuple(out)
        self._leases_cache = (key, result)
        return result

    # ------------------------------------------------------------------
    # Durable state (snapshot / restore)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """JSON-ready full broker state for durable snapshots.

        Coverage entries are emitted as an *ordered list* in resource
        first-touch order: :attr:`cost` sums per-policy costs in
        ``_coverage`` insertion order, so restoring the resources in any
        other order could drift the float sum by a ULP.  The expiry heap
        is stored verbatim (a valid heap round-trips as a list), grants
        in id order (which is insertion order), and per-policy state via
        the policy's own ``state_dict``.
        """
        coverage_rows = []
        for resource, coverage in self._coverage.items():
            state_dict = getattr(coverage.policy, "state_dict", None)
            if state_dict is None:
                raise ModelError(
                    f"policy {type(coverage.policy).__name__} is not "
                    "snapshottable (no state_dict/restore_state)"
                )
            coverage_rows.append(
                {
                    "resource": resource,
                    "covered_until": coverage.covered_until,
                    "seen": coverage.seen,
                    "policy": state_dict(),
                }
            )
        grants = [
            [
                grant.grant_id,
                grant.tenant,
                grant.resource,
                grant.acquired_at,
                grant.expires_at,
                -1 if grant.released_at is None else grant.released_at,
            ]
            for grant in self._grants.values()
        ]
        return {
            "version": 1,
            "clock": self._clock,
            "next_grant_id": self._next_grant_id,
            "closed": self._closed,
            "stats": self.stats.full_dict(),
            "grants": grants,
            "grant_heap": [list(entry) for entry in self._grant_heap],
            "coverage": coverage_rows,
        }

    def restore_state(self, state: dict) -> None:
        """Load a :meth:`snapshot_state` snapshot into this fresh broker.

        The broker must be freshly constructed with the same schedule
        and policy factory the snapshot was taken under; restoring over
        existing state raises.  After the restore the broker is
        byte-identical to the one snapshotted: same grants, heap, clock,
        stats, coverage horizons, policy purchases, and float cost sums.
        """
        if self._coverage or self._grants or self.stats.events:
            raise ModelError("restore_state requires a fresh broker")
        for row in state["coverage"]:
            resource = int(row["resource"])
            coverage = self._coverage_of(resource)
            restore = getattr(coverage.policy, "restore_state", None)
            if restore is None:
                raise ModelError(
                    f"policy {type(coverage.policy).__name__} is not "
                    "snapshottable (no state_dict/restore_state)"
                )
            restore(row["policy"])
            coverage.covered_until = int(row["covered_until"])
            coverage.seen = int(row["seen"])
        for grant_id, tenant, resource, acquired, expires, released in state[
            "grants"
        ]:
            released_at = None if released < 0 else int(released)
            grant = _Grant(
                grant_id=int(grant_id),
                tenant=str(tenant),
                resource=int(resource),
                acquired_at=int(acquired),
                expires_at=int(expires),
                released_at=released_at,
            )
            self._grants[grant.grant_id] = grant
            if released_at is None:
                self._active[(grant.tenant, grant.resource)] = grant.grant_id
        self._grant_heap = [
            (int(expires), int(grant_id))
            for expires, grant_id in state["grant_heap"]
        ]
        self._clock = int(state["clock"])
        self._next_grant_id = int(state["next_grant_id"])
        self._closed = int(state["closed"])
        self.stats = BrokerStats(
            **{key: int(value) for key, value in state["stats"].items()}
        )
        self._leases_cache = None

    @property
    def num_active(self) -> int:
        """Number of currently live grants."""
        return len(self._active)

    @property
    def num_grants(self) -> int:
        """Grant-table size: every retained record, live or closed."""
        return len(self._grants)

    @property
    def heap_size(self) -> int:
        """Expiry-heap size, stale entries included (a laziness gauge)."""
        return len(self._grant_heap)


def replay_trace(broker: LeaseBroker, events: Iterable[Event]) -> BrokerStats:
    """Feed a whole trace through the broker; returns its stats.

    Equivalent to calling :meth:`LeaseBroker.handle` per event, but
    dispatches straight to the broker cores so bulk replay never builds
    the per-event :class:`LeaseGrant` snapshots nobody reads.
    """
    acquire = broker._acquire
    release = broker._release
    tick = broker.tick
    for event in events:
        kind = type(event)
        if kind is Acquire:
            acquire(event.tenant, event.resource, event.time)
        elif kind is Release:
            release(event.tenant, event.resource, event.time)
        elif kind is Tick:
            tick(event.time)
        else:
            broker.handle(event)  # raises the unknown-event error
    return broker.stats
