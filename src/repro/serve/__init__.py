"""repro.serve — the asyncio lease-serving front end.

The ROADMAP's serving milestone: :mod:`repro.engine`'s synchronous
:class:`~repro.engine.broker.LeaseBroker` put behind a real service
boundary, so concurrent tenants multiplex over sockets instead of
sharing one Python call stack.

* :mod:`repro.serve.protocol` — the length-prefixed JSON wire protocol
  (``acquire / renew / release / tick / stats / report / trace / drain /
  shutdown``) with request ids and typed error frames.
* :mod:`repro.serve.server` — :class:`LeaseServer`, an asyncio TCP +
  unix-socket server that owns one broker per resource shard (PR 2's
  shard ranges) and serializes every mutation through that shard's
  dispatch queue; :class:`ServerThread` hosts its loop for sync callers.
* :mod:`repro.serve.client` — :class:`AsyncLeaseClient` (pipelined) and
  :class:`AsyncClientPool`, plus the blocking reconnecting
  :class:`LeaseClient`.
* :mod:`repro.serve.session` — per-tenant sessions: bounded in-flight
  windows (backpressure error frames) and idle expiry.
* :mod:`repro.serve.loadgen` — closed-loop tenant workloads over unix
  sockets whose served aggregate is checked byte-identical against an
  inline replay of the merged trace; powers the ``serve-*`` scenario
  family, ``python -m repro engine {serve,loadgen}``, and the ``p03``
  perf benchmark.
"""

from .client import (
    AsyncClientPool,
    AsyncLeaseClient,
    DirectLeaseClient,
    LeaseClient,
    parse_worker_endpoint,
)
from .loadgen import (
    ServeInstance,
    build_serve_instance,
    compare_with_inline,
    drive_tenants,
    drive_tenants_direct,
    merge_shard_payloads,
    replay_applied,
    run_serve_instance,
    serve_once,
    verify_serve,
)
from .protocol import (
    CODEC_BIN,
    CODEC_JSON,
    CODECS,
    MAX_FRAME_BYTES,
    OPS,
    PROTOCOL_VERSION,
    FrameDecoder,
    LeaseRetryError,
    LeaseTimeoutError,
    ProtocolError,
    ServeError,
    encode_frame,
    negotiate_codec,
)
from .server import LeaseServer, ServerThread, shard_ranges
from .session import SessionRegistry, TenantSession

__all__ = [
    "AsyncClientPool",
    "AsyncLeaseClient",
    "CODEC_BIN",
    "CODEC_JSON",
    "CODECS",
    "DirectLeaseClient",
    "FrameDecoder",
    "LeaseClient",
    "LeaseRetryError",
    "LeaseServer",
    "LeaseTimeoutError",
    "MAX_FRAME_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeError",
    "ServeInstance",
    "ServerThread",
    "SessionRegistry",
    "TenantSession",
    "build_serve_instance",
    "compare_with_inline",
    "drive_tenants",
    "drive_tenants_direct",
    "encode_frame",
    "merge_shard_payloads",
    "negotiate_codec",
    "parse_worker_endpoint",
    "replay_applied",
    "run_serve_instance",
    "serve_once",
    "shard_ranges",
    "verify_serve",
]
