"""Per-tenant sessions: backpressure windows and idle expiry.

The server keys a :class:`TenantSession` by tenant name — not by
connection, since a tenant may spread its traffic over a pooled set of
sockets.  A session does two jobs:

* **Backpressure.**  Each tenant gets a bounded in-flight *window*: at
  most ``window`` mutation requests queued-but-unanswered at once.  A
  request beyond the window is refused immediately with a
  ``backpressure`` error frame instead of growing the dispatch queues
  without bound — the client's cue to await some responses before
  pipelining more.  Closed-loop clients (one in-flight request per
  tenant) never hit the window.
* **Idle expiry.**  Sessions are bookkeeping, and tenants come and go; a
  reaper sweep drops sessions that have been idle (no request, nothing
  in flight) longer than ``idle_timeout`` seconds of wall clock.  Expiry
  forgets only counters — grants and leases live in the brokers and are
  untouched.

The registry is deliberately loop-agnostic pure Python (the clock is an
injectable callable), so its semantics are unit-testable without a
server or a socket.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from .._validation import require_positive_int


@dataclass(slots=True)
class TenantSession:
    """One tenant's serving-side state: window accounting and counters."""

    tenant: str
    window: int
    inflight: int = 0
    served: int = 0
    rejected: int = 0
    last_active: float = 0.0

    def try_acquire(self, now: float) -> bool:
        """Claim one in-flight slot; ``False`` when the window is full."""
        self.last_active = now
        if self.inflight >= self.window:
            self.rejected += 1
            return False
        self.inflight += 1
        return True

    def release(self, now: float) -> None:
        """Return one in-flight slot after its response was produced."""
        self.inflight -= 1
        self.served += 1
        self.last_active = now


class SessionRegistry:
    """All live tenant sessions, with window checks and an idle reaper.

    Args:
        window: per-tenant in-flight request bound (>= 1).
        idle_timeout: seconds of inactivity before :meth:`expire_idle`
            drops a session with nothing in flight.
        clock: monotonic-seconds source; injectable for tests.
        refusal_counter: anything with ``.inc()``, bumped once per
            backpressure refusal (the server passes its registry's
            ``serve_backpressure_refusals_total``); ``None`` = no call.
        expiry_counter: likewise, bumped by the number of sessions each
            :meth:`expire_idle` sweep reaps.
    """

    def __init__(
        self,
        window: int = 64,
        idle_timeout: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
        refusal_counter=None,
        expiry_counter=None,
    ):
        require_positive_int(window, "window")
        if idle_timeout <= 0:
            raise ValueError("idle_timeout must be > 0 seconds")
        self.window = window
        self.idle_timeout = idle_timeout
        self._clock = clock
        self._refusal_counter = refusal_counter
        self._expiry_counter = expiry_counter
        self._sessions: dict[str, TenantSession] = {}
        self.expired_total = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def session(self, tenant: str) -> TenantSession:
        """The tenant's session, created (and touched) on first sight."""
        record = self._sessions.get(tenant)
        if record is None:
            record = TenantSession(tenant=tenant, window=self.window)
            self._sessions[tenant] = record
        record.last_active = self._clock()
        return record

    def try_acquire(self, tenant: str) -> TenantSession | None:
        """Claim an in-flight slot for ``tenant``; ``None`` = backpressure."""
        record = self.session(tenant)
        if not record.try_acquire(self._clock()):
            if self._refusal_counter is not None:
                self._refusal_counter.inc()
            return None
        return record

    def release(self, record: TenantSession) -> None:
        """Return a slot claimed by :meth:`try_acquire`."""
        record.release(self._clock())

    def expire_idle(self) -> tuple[str, ...]:
        """Drop every session idle past the timeout with nothing in flight."""
        now = self._clock()
        doomed = tuple(
            tenant
            for tenant, record in self._sessions.items()
            if record.inflight == 0
            and now - record.last_active > self.idle_timeout
        )
        for tenant in doomed:
            del self._sessions[tenant]
        self.expired_total += len(doomed)
        if doomed and self._expiry_counter is not None:
            self._expiry_counter.inc(len(doomed))
        return doomed

    def snapshot(self) -> dict:
        """JSON-ready registry view for the ``stats`` op."""
        return {
            "tenants": len(self._sessions),
            "window": self.window,
            "idle_timeout": self.idle_timeout,
            "expired_total": self.expired_total,
            "inflight": sum(s.inflight for s in self._sessions.values()),
            "served": sum(s.served for s in self._sessions.values()),
            "rejected": sum(s.rejected for s in self._sessions.values()),
        }

    def tenant_snapshot(self) -> list[dict]:
        """JSON-ready per-tenant rows for the admin health endpoint.

        One row per live session, sorted by tenant name so the output
        is stable across calls; ``idle_sec`` is seconds since the
        tenant's last request on the injected clock.
        """
        now = self._clock()
        return [
            {
                "tenant": record.tenant,
                "inflight": record.inflight,
                "served": record.served,
                "rejected": record.rejected,
                "idle_sec": round(now - record.last_active, 3),
            }
            for record in sorted(
                self._sessions.values(), key=lambda record: record.tenant
            )
        ]
