"""Closed-loop tenant workloads driving a lease server, with proof.

The loadgen turns a canonical broker trace (the shardable
:class:`~repro.engine.scenarios.BrokerTraceInstance` of PR 2's
``broker-*`` family) into live traffic: every tenant in the trace
becomes its own closed-loop client on its own unix-socket connection,
replaying its events in order and awaiting each response before sending
the next.  A coordinator steps the whole fleet through simulated days
*bulk-synchronously* — per day it first broadcasts the day's tick, then
lets every tenant fire its releases, then its acquires, with a barrier
between phases.  Within a phase tenants interleave arbitrarily (that is
the concurrency being exercised), but every interleaving the barrier
admits permutes only same-day operations on distinct (tenant, resource)
keys, which the broker's outcome is invariant under.  The served outcome
is therefore *deterministic* and provably equal to an inline replay of
the same merged trace:

* per shard, the server's broker saw exactly the canonical sub-trace
  (same events, same days, per-tenant order preserved, ticks
  replicated);
* merging the per-shard run payloads with PR 2's
  :func:`~repro.engine.scenarios.merge_broker_runs` therefore reproduces
  the single-broker inline replay byte for byte — same cost, same lease
  tuple, same stats.

:func:`run_serve_instance` performs the whole cycle — start an
in-process server on a throwaway unix socket, drive the tenants, fetch
the per-shard reports, merge, replay inline, compare — and records the
verdict in the result's ``detail["serve"]["report_equal"]``, which
:func:`verify_serve` then enforces.  :func:`drive_tenants` is the
client-side half on its own, for loadgen against an external server
(``python -m repro engine loadgen --socket ...``).

Free-running tenants (no day barrier) are supported for tests and
stress runs through the server's *recording* mode: with ``record=True``
the server logs every applied (clock-ratcheted) event per shard, and
:func:`replay_applied` re-runs those serialized traces through fresh
brokers — the served totals must match that replay exactly, whatever
the interleaving was.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
import time
from dataclasses import dataclass, replace
from pathlib import Path

from ..core.lease import Lease, LeaseSchedule
from ..core.results import RunResult
from ..analysis.verify import VerificationReport
from ..engine.broker import LeaseBroker, replay_trace
from ..engine.events import (
    Acquire,
    Event,
    Release,
    Tick,
    event_from_payload,
    generate_resource_trace,
)
from ..engine.scenarios import (
    _BROKER_ALGORITHM,
    BrokerTraceInstance,
    merge_broker_runs,
    run_broker_trace,
    verify_broker_trace,
)
from ..errors import ModelError
from ..obs.metrics import Histogram, MetricsRegistry
from ..obs.trace import TraceSink
from .client import AsyncLeaseClient, DirectLeaseClient
from .server import LeaseServer

#: Histogram family the loadgen samples client-observed op latency into,
#: one series per tenant; ``loadgen --check`` prints its percentiles.
LOADGEN_LATENCY_METRIC = "loadgen_op_latency_seconds"


@dataclass(frozen=True)
class ServeInstance:
    """A serve-scenario instance: the canonical trace plus serving shape.

    ``trace`` is the full (unsharded) broker-trace instance whose inline
    replay is the ground truth; ``num_shards`` is how the server
    partitions the resources; ``session_window`` bounds each tenant's
    in-flight requests (closed-loop tenants use exactly one).
    """

    trace: BrokerTraceInstance
    num_shards: int
    session_window: int = 64

    @property
    def tenants(self) -> tuple[str, ...]:
        """Every tenant named in the trace, sorted."""
        return tuple(
            sorted(
                {
                    event.tenant
                    for event in self.trace.events
                    if type(event) is not Tick
                }
            )
        )


def build_serve_instance(
    workload: str,
    horizon: int,
    seed: int,
    num_resources: int = 8,
    tenants_per_resource: int = 2,
    hold: int = 3,
    tick_every: int = 32,
    num_types: int = 4,
    cost_growth: float = 2.0,
    num_shards: int = 4,
    session_window: int = 64,
) -> ServeInstance:
    """A serve instance over :func:`generate_resource_trace` streams.

    Defaults mirror :func:`~repro.engine.scenarios.make_broker_scenario`:
    ``cost_growth=2.0`` keeps every cost sum exactly representable, so
    the served-vs-inline equality is bitwise, not approximate.
    """
    schedule = LeaseSchedule.power_of_two(num_types, cost_growth=cost_growth)
    events = generate_resource_trace(
        workload,
        horizon,
        seed,
        num_resources=num_resources,
        tenants_per_resource=tenants_per_resource,
        hold=hold,
        tick_every=tick_every,
    )
    trace = BrokerTraceInstance(
        schedule=schedule,
        workload=workload,
        horizon=horizon,
        seed=seed,
        num_resources=num_resources,
        resources=(0, num_resources),
        events=events,
    )
    return ServeInstance(
        trace=trace, num_shards=num_shards, session_window=session_window
    )


# ----------------------------------------------------------------------
# Day schedule: the coordinator's bulk-synchronous plan
# ----------------------------------------------------------------------
def _day_schedule(
    events,
) -> list[tuple[int, bool, dict[str, list[Event]], dict[str, list[Event]]]]:
    """Group a canonical trace into per-day (tick?, releases, acquires)."""
    days: list[tuple[int, bool, dict, dict]] = []
    current = None
    for event in events:
        if current is None or event.time != current[0]:
            current = (event.time, [False], {}, {})
            days.append(current)
        if type(event) is Tick:
            current[1][0] = True
        elif type(event) is Release:
            current[2].setdefault(event.tenant, []).append(event)
        else:
            current[3].setdefault(event.tenant, []).append(event)
    return [
        (time, tick[0], releases, acquires)
        for time, tick, releases, acquires in days
    ]


async def _tenant_burst(
    client: AsyncLeaseClient,
    events: list[Event],
    hist: Histogram | None = None,
    clock=None,
) -> int:
    """One tenant's same-day events, strictly closed-loop (one in flight).

    With ``hist`` given, each op's client-observed round-trip latency is
    sampled into it using ``clock`` (the loadgen registry's monotonic
    source); without it nothing is timed.
    """
    sent = 0
    for event in events:
        t0 = clock() if hist is not None else 0.0
        if type(event) is Release:
            await client.release(event.tenant, event.resource, event.time)
        else:
            await client.acquire(event.tenant, event.resource, event.time)
        if hist is not None:
            hist.observe(clock() - t0)
        sent += 1
    return sent


async def drive_tenants(
    instance: ServeInstance,
    socket_path: str,
    retry_for: float = 5.0,
    codec: str | None = None,
    latency_registry: MetricsRegistry | None = None,
    on_day=None,
    client_trace: TraceSink | None = None,
) -> dict:
    """Drive a server at ``socket_path`` with the instance's tenants.

    One pipelined connection per tenant plus a control connection for
    ticks and the final report; returns ``{"shards": [...], "requests":
    n}`` where the shard payloads are the server's per-shard ``report``
    op results.  ``codec="bin"`` negotiates the binary codec on every
    connection (falling back to JSON if the server declines); the
    ``instance`` only needs ``.tenants`` and ``.trace.events``, so the
    cluster loadgen drives through here too.

    ``latency_registry``, when given and enabled, receives one
    :data:`LOADGEN_LATENCY_METRIC` histogram series per tenant with
    every op's client-observed round-trip latency — the data behind the
    ``loadgen --check`` percentile lines.  Latencies are wall-clock and
    never enter the report's verified fields.

    ``on_day``, when given, is called with each simulated day *before*
    that day's tick and bursts — the fault-injection hook the chaos
    harness uses to kill workers at deterministic points in the run.

    ``client_trace``, when given and enabled, makes every connection a
    trace originator: each mutation is sent with a fresh trace context
    (and leaves a ``client`` span in the sink), which the server — or
    the router and its workers — link their own spans to.  Span files
    from all sides merge into causal trees via ``engine trace-tree``.
    """
    control = await AsyncLeaseClient.open_unix(
        socket_path, retry_for=retry_for, codec=codec, trace=client_trace
    )
    clients = {
        tenant: await AsyncLeaseClient.open_unix(
            socket_path, retry_for=retry_for, codec=codec, trace=client_trace
        )
        for tenant in instance.tenants
    }
    hists: dict[str, Histogram] = {}
    obs_clock = None
    if latency_registry is not None and latency_registry.enabled:
        obs_clock = latency_registry.clock
        hists = {
            tenant: latency_registry.histogram(
                LOADGEN_LATENCY_METRIC,
                help="Client-observed op round-trip latency, per tenant.",
                tenant=tenant,
            )
            for tenant in instance.tenants
        }
    requests = 0
    try:
        for day, has_tick, releases, acquires in _day_schedule(
            instance.trace.events
        ):
            if on_day is not None:
                on_day(day)
            if has_tick:
                await control.tick(day)
                requests += 1
            for phase in (releases, acquires):
                if not phase:
                    continue
                counts = await asyncio.gather(
                    *(
                        _tenant_burst(
                            clients[tenant], events,
                            hists.get(tenant), obs_clock,
                        )
                        for tenant, events in phase.items()
                    )
                )
                requests += sum(counts)
        report = await control.report()
    finally:
        for client in clients.values():
            await client.close()
        await control.close()
        if client_trace is not None:
            client_trace.flush()
    report["requests"] = requests
    report["connect_attempts"] = control.connect_attempts + sum(
        client.connect_attempts for client in clients.values()
    )
    return report


async def drive_tenants_direct(
    instance: ServeInstance,
    socket_path: str,
    retry_for: float = 5.0,
    codec: str | None = None,
    latency_registry: MetricsRegistry | None = None,
    on_day=None,
    client_trace: TraceSink | None = None,
    recover_for: float = 60.0,
) -> dict:
    """Drive a *cluster router* at ``socket_path`` over direct data paths.

    The two-plane counterpart of :func:`drive_tenants`: each tenant is a
    :class:`~repro.serve.client.DirectLeaseClient` that handshakes with
    the router once (the ``route`` verb) and then sends its acquires,
    renews, and releases straight to the owning worker; the router only
    sees the ticks, the final ``report`` barrier, and the handshakes.

    The determinism argument is unchanged.  The coordinator still steps
    the fleet bulk-synchronously — the day's tick is awaited on the
    control connection *before* any tenant fires, and the tick barrier
    completes on every worker before it answers, so every direct
    mutation a tenant then sends lands behind the tick in its worker's
    dispatch queue; the releases/acquires phase barriers do the rest.
    Within a phase, direct ops on distinct (tenant, resource) keys
    interleave arbitrarily — exactly the interleaving freedom the routed
    drive admits, and the one the broker's outcome is invariant under.
    A worker killed mid-drive surfaces as a dead link; the tenant's
    client re-handshakes until supervision brings the worker back and
    resends the op retry-marked, which the recovered worker's
    applied-identity dedup makes exactly-once (see
    :class:`~repro.serve.client.DirectLeaseClient`).

    Returns the same shape as :func:`drive_tenants`, plus
    ``handshakes`` (route calls across all tenants) and ``retried_ops``
    (mutations resent after a worker death).
    """
    control = await AsyncLeaseClient.open_unix(
        socket_path, retry_for=retry_for, codec=codec, trace=client_trace
    )
    clients = {
        tenant: await DirectLeaseClient.open_unix(
            socket_path, retry_for=retry_for, codec=codec,
            recover_for=recover_for, trace=client_trace,
        )
        for tenant in instance.tenants
    }
    hists: dict[str, Histogram] = {}
    obs_clock = None
    if latency_registry is not None and latency_registry.enabled:
        obs_clock = latency_registry.clock
        hists = {
            tenant: latency_registry.histogram(
                LOADGEN_LATENCY_METRIC,
                help="Client-observed op round-trip latency, per tenant.",
                tenant=tenant,
            )
            for tenant in instance.tenants
        }
    requests = 0
    try:
        for day, has_tick, releases, acquires in _day_schedule(
            instance.trace.events
        ):
            if on_day is not None:
                on_day(day)
            if has_tick:
                await control.tick(day)
                requests += 1
            for phase in (releases, acquires):
                if not phase:
                    continue
                counts = await asyncio.gather(
                    *(
                        _tenant_burst(
                            clients[tenant], events,
                            hists.get(tenant), obs_clock,
                        )
                        for tenant, events in phase.items()
                    )
                )
                requests += sum(counts)
        report = await control.report()
    finally:
        for client in clients.values():
            await client.close()
        await control.close()
        if client_trace is not None:
            client_trace.flush()
    report["requests"] = requests
    report["connect_attempts"] = control.connect_attempts + sum(
        client.connect_attempts for client in clients.values()
    )
    report["handshakes"] = sum(
        client.handshakes for client in clients.values()
    )
    report["retried_ops"] = sum(
        client.retried_ops for client in clients.values()
    )
    return report


# ----------------------------------------------------------------------
# Shard payloads -> RunResults -> the served aggregate
# ----------------------------------------------------------------------
def _shard_run_result(payload: dict) -> RunResult:
    leases = tuple(
        Lease(
            resource=resource,
            type_index=type_index,
            start=start,
            length=length,
            cost=cost,
        )
        for resource, type_index, start, length, cost in payload["leases"]
    )
    return RunResult(
        algorithm=_BROKER_ALGORITHM,
        cost=payload["cost"],
        leases=leases,
        num_demands=payload["num_demands"],
        detail={
            "broker_stats": dict(payload["stats"]),
            "num_active": payload["num_active"],
        },
    )


def merge_shard_payloads(shard_payloads: list[dict]) -> RunResult:
    """Fold the server's per-shard report payloads into one run result."""
    runs = [_shard_run_result(payload) for payload in shard_payloads]
    if len(runs) == 1:
        return runs[0]
    return merge_broker_runs(runs)


def compare_with_inline(
    instance: ServeInstance, served: RunResult, seed: int
) -> tuple[RunResult, bool]:
    """Replay the merged trace inline and test exact aggregate equality.

    Equality is field-by-field on everything the aggregate report is
    built from — cost, the full lease tuple, demand count, broker
    counters, live-grant count — which is strictly stronger than the
    rendered report row matching byte for byte.
    """
    inline = run_broker_trace(instance.trace, seed)
    equal = (
        served.cost == inline.cost
        and tuple(served.leases) == tuple(inline.leases)
        and served.num_demands == inline.num_demands
        and served.detail["broker_stats"] == inline.detail["broker_stats"]
        and served.detail["num_active"] == inline.detail["num_active"]
    )
    return inline, equal


async def _admin_http_get(port: int, path: str) -> bytes:
    """One raw HTTP GET against the admin plane (scraper-style).

    Sends ``Connection: close`` so the read-to-EOF below terminates —
    the plane's listener is keep-alive by default.
    """
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: localhost\r\n"
            f"Connection: close\r\n\r\n".encode("ascii")
        )
        await writer.drain()
        return await reader.read(-1)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


#: What the default admin scraper polls each cycle.
DEFAULT_POLL_PATHS = ("/metrics", "/leases")


async def _poll_admin(
    port: int, hz: float, paths: tuple[str, ...] = DEFAULT_POLL_PATHS
) -> None:
    """Background scraper: hit each admin path at ``hz`` forever.

    What a real scrape loop does to a serving process — the p07 bench
    runs this against the admin arm to price the ops plane under load,
    and the p08 flight bench widens ``paths`` to the history and
    profiler endpoints.  Connection errors are swallowed: the plane may
    be mid-teardown.
    """
    period = 1.0 / hz
    while True:
        for path in paths:
            try:
                await _admin_http_get(port, path)
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                pass
        await asyncio.sleep(period)


def serve_once(
    instance: ServeInstance,
    metrics: MetricsRegistry | None = None,
    trace_sink: TraceSink | None = None,
    latency_registry: MetricsRegistry | None = None,
    wal_dir: str | None = None,
    fsync: str = "batch",
    snapshot_every: int | None = None,
    timings: dict | None = None,
    admin: bool = False,
    admin_poll_hz: float = 4.0,
    admin_poll_paths: tuple[str, ...] = DEFAULT_POLL_PATHS,
    client_trace: TraceSink | None = None,
    history=None,
    profiler=None,
) -> dict:
    """One full serving cycle: in-process server, tenants, final report.

    Starts a :class:`~repro.serve.server.LeaseServer` on a throwaway
    unix socket, drives every tenant closed-loop, and returns the
    ``report`` payload.  This is the whole *serving* hot path and
    nothing else — the perf harness times exactly this call, with
    ``metrics``/``trace_sink`` passed through to the server (the
    observability-overhead bench) and ``latency_registry`` to the
    client side.  ``wal_dir`` (with ``fsync``/``snapshot_every``)
    enables the per-shard write-ahead log, which the durability-overhead
    bench prices against this same call with the WAL off.

    When a ``timings`` dict is passed in, ``timings["drive"]`` receives
    the wall-clock seconds of the drive window alone — tenants
    connecting through final report, excluding server startup
    (recovery) and shutdown (the final snapshot + fsync).  The
    durability bench rates throughput on this window: teardown
    snapshots are a per-shard constant, not a per-event cost, and
    folding them into the rate would punish short runs for durability
    they already paid for.

    ``admin=True`` mounts a :class:`~repro.admin.AdminPlane` on an
    ephemeral TCP port beside the unix lease socket and runs a
    background scraper polling each of ``admin_poll_paths`` at
    ``admin_poll_hz`` for the whole drive — the p07 bench's admin arm;
    the p08 flight bench widens the paths to ``/metrics/history`` and
    ``/profile``.  ``history`` and ``profiler`` flow through to the
    server (a :class:`~repro.obs.history.MetricsHistory` ring and a
    :class:`~repro.obs.profile.SamplingProfiler`); ``client_trace``
    flows through to :func:`drive_tenants`, making the tenants trace
    originators.
    """
    trace = instance.trace
    wal_kwargs: dict = {}
    if wal_dir is not None:
        wal_kwargs["wal_dir"] = wal_dir
        wal_kwargs["fsync"] = fsync
        if snapshot_every is not None:
            wal_kwargs["snapshot_every"] = snapshot_every

    async def _serve_and_drive(socket_path: str) -> dict:
        server = LeaseServer(
            trace.schedule,
            num_resources=trace.num_resources,
            num_shards=instance.num_shards,
            session_window=instance.session_window,
            metrics=metrics,
            trace=trace_sink,
            history=history,
            profiler=profiler,
            **wal_kwargs,
        )
        await server.start_unix(socket_path)
        plane = None
        scraper = None
        if admin:
            # Imported lazily: repro.admin imports nothing from here,
            # but the serving hot path should not pay the import unless
            # the admin arm is actually requested.
            from ..admin.plane import AdminPlane

            plane = AdminPlane(server)
            port = await plane.start_tcp()
            scraper = asyncio.create_task(
                _poll_admin(port, admin_poll_hz, admin_poll_paths)
            )
        try:
            start = time.perf_counter()
            report = await drive_tenants(
                instance, socket_path, latency_registry=latency_registry,
                client_trace=client_trace,
            )
            if timings is not None:
                timings["drive"] = time.perf_counter() - start
            return report
        finally:
            if scraper is not None:
                scraper.cancel()
                try:
                    await scraper
                except (asyncio.CancelledError, Exception):
                    pass
            if plane is not None:
                await plane.close()
            await server.shutdown()

    workdir = tempfile.mkdtemp(prefix="rsv-")
    try:
        socket_path = str(Path(workdir) / "serve.sock")
        return asyncio.run(_serve_and_drive(socket_path))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def run_serve_instance(
    instance: ServeInstance, seed: int = 0, report: dict | None = None
) -> RunResult:
    """Serve the instance end to end and return the *served* aggregate.

    Runs :func:`serve_once` (unless a pre-fetched ``report`` is passed
    in), merges the per-shard reports, replays the merged trace inline,
    and attaches the comparison verdict under ``detail["serve"]``.  The
    returned result is the server's — the inline replay only judges it.
    """
    if report is None:
        report = serve_once(instance)
    served = merge_shard_payloads(report["shards"])
    _, equal = compare_with_inline(instance, served, seed)
    detail = dict(served.detail)
    detail["serve"] = {
        "tenants": len(instance.tenants),
        "shards": instance.num_shards,
        "transport": "unix",
        "requests": report["requests"],
        "report_equal": equal,
    }
    return replace(served, detail=detail)


def verify_serve(instance: ServeInstance, result: RunResult) -> VerificationReport:
    """Serve-scenario verification: coverage plus the equality verdict.

    Re-checks every canonical acquire day against the purchased leases
    (exactly the broker-family verifier) and additionally fails unless
    the served aggregate matched the inline replay of the merged trace.
    """
    coverage = verify_broker_trace(instance.trace, result)
    failures = list(coverage.failures)
    serve_detail = result.detail.get("serve", {})
    if not serve_detail.get("report_equal"):
        failures.append(
            "served aggregate report diverged from the inline replay of "
            "the merged trace"
        )
    return VerificationReport(
        ok=not failures,
        failures=tuple(failures),
        checked=coverage.checked + 1,
    )


# ----------------------------------------------------------------------
# Free-running serialized-trace replay (recording mode)
# ----------------------------------------------------------------------
def replay_applied(
    schedule: LeaseSchedule, trace_payload: dict
) -> RunResult:
    """Replay a server's recorded per-shard applied traces inline.

    ``trace_payload`` is the ``trace`` op's result.  Each shard's
    serialized event log replays through a fresh broker; the per-shard
    runs merge exactly like PR 2's shard merges.  A server's live totals
    must equal this replay no matter how its tenants interleaved — the
    recorded (clock-ratcheted) traces *are* the serialization the
    dispatch queues enforced.
    """
    shards = trace_payload.get("shards")
    if not shards:
        raise ModelError("trace payload names no shards")
    runs = []
    for shard in shards:
        events = tuple(
            event_from_payload(payload) for payload in shard["events"]
        )
        broker = LeaseBroker(schedule)
        stats = replay_trace(broker, events)
        leases = broker.leases
        runs.append(
            RunResult(
                algorithm=_BROKER_ALGORITHM,
                cost=sum(lease.cost for lease in leases),
                leases=leases,
                num_demands=stats.acquires + stats.renewals,
                detail={
                    "broker_stats": stats.mergeable(),
                    "num_active": broker.num_active,
                },
            )
        )
    if len(runs) == 1:
        return runs[0]
    return merge_broker_runs(runs)
