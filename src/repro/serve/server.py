"""Asyncio lease-serving server: shard brokers behind a wire protocol.

:class:`LeaseServer` is the service boundary the ROADMAP's first open
item asks for — the synchronous, single-threaded
:class:`~repro.engine.broker.LeaseBroker` put behind an asyncio TCP and
unix-socket front end that multiplexes any number of concurrent tenants.

**Ownership and threading contract.**  A broker is single-owner state:
nothing in it is locked, and its clock must advance monotonically.  The
server honors that by partitioning the resource space into the same
contiguous shard ranges PR 2's intra-scenario sharding uses
(:func:`shard_ranges`) and giving each shard its *own* broker plus its
own ``asyncio.Queue`` and exactly one worker task.  Every mutation
(acquire / renew / release / tick) is routed to its resource's shard
queue and applied by that shard's worker alone — connection handlers
never touch a broker directly, and neither does anything else.  Reads
(``stats`` / ``report`` / ``trace``) travel through the same queues, so
they act as barriers: a read observes every mutation enqueued before it.
One event loop owns the whole server; :class:`ServerThread` wraps that
loop in a daemon thread for synchronous callers (the sync client, CLI
tests), which talk to it only over sockets.

**Clock ratcheting.**  Tenants are independent closed loops, so their
simulated days drift: a request can arrive carrying a ``time`` older
than what its shard broker has already seen.  The worker ratchets such
times up to the broker clock (``now = max(time, clock)``) — semantically
"this request reaches the server *now*; its day is at least today" —
and, when recording, logs the *applied* event, so a replay of the
recorded trace through fresh brokers reproduces the server's state
exactly (the serialized-trace equivalence the tests pin down).

**Observability.**  A server optionally carries a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.trace.TraceSink`.  With metrics on, the dispatch loop
samples per-op latency (enqueue to reply, the registry's injectable
monotonic clock) into histograms keyed by op kind, the frame adapters
count bytes in/out, and the session registry counts backpressure
refusals and idle expiries.  The ``metrics`` protocol verb is a
*scrape*: it rides the ``stats`` barrier broadcast, folds the per-shard
broker counters and gauges into a fresh registry
(:mod:`repro.obs.export`), and appends the live registry's rendering —
so broker state costs nothing on the hot path and the exposition is
valid Prometheus text either way.  With tracing on, the dispatch loop
also emits one JSONL span per op.  Neither touches broker state or any
served payload, so aggregate reports stay byte-identical to inline
replay with instrumentation on or off (CI-gated).

**Drain and shutdown.**  ``drain`` moves the server to a mode where new
acquires are refused with a ``draining`` error frame while renews and
releases — completing the lifecycle of grants already held — are still
served, including every request already sitting in a dispatch queue.
``shutdown`` stops accepting connections, lets the queues empty, stops
the workers, and wakes :meth:`LeaseServer.run_until_stopped`.
"""

from __future__ import annotations

import asyncio
import bisect
import threading
import time as _time
from pathlib import Path

from ..core.lease import LeaseSchedule
from ..engine.broker import LeaseBroker, PolicyFactory
from ..engine.events import (
    Acquire,
    Event,
    Release,
    Tick,
    event_from_payload,
    event_to_payload,
)
from ..engine.scenarios import shard_ranges as _shard_ranges
from ..errors import ModelError
from ..obs.export import export_sessions, export_shards
from ..obs.history import MetricsHistory
from ..obs.metrics import Histogram, MetricsRegistry
from ..obs.profile import SamplingProfiler
from ..obs.trace import NULL_TRACE, TraceSink
from ..obs.tracetree import (
    build_trace_trees,
    new_id,
    trace_tree_payload,
)
from .protocol import (
    CODEC_JSON,
    MUTATION_OPS,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    ServeError,
    error,
    negotiate_codec,
    ok,
    parse_trace,
    read_frame,
    write_frame,
)
from .session import SessionRegistry

#: Server lifecycle states, in order.
STATES = ("serving", "draining", "stopped")

_STOP = object()  # queue sentinel: worker exits after draining ahead of it


# ----------------------------------------------------------------------
# Envelope field validation — shared by the server and the cluster router
# ----------------------------------------------------------------------
def field_time(payload: dict) -> int:
    """The envelope's ``time`` field, validated."""
    when = payload.get("time")
    if not isinstance(when, int) or isinstance(when, bool) or when < 0:
        raise ServeError("protocol", f"time must be an int >= 0, got {when!r}")
    return when


def field_tenant(payload: dict) -> str:
    """The envelope's ``tenant`` field, validated."""
    tenant = payload.get("tenant")
    if not isinstance(tenant, str) or not tenant:
        raise ServeError(
            "protocol", f"tenant must be a non-empty string, got {tenant!r}"
        )
    return tenant


def field_resource(payload: dict, num_resources: int) -> int:
    """The envelope's ``resource`` field, validated against ``[0, N)``."""
    resource = payload.get("resource")
    if (
        not isinstance(resource, int)
        or isinstance(resource, bool)
        or not 0 <= resource < num_resources
    ):
        raise ServeError(
            "protocol",
            f"resource must be an int in [0, {num_resources}), "
            f"got {resource!r}",
        )
    return resource


def shard_ranges(num_resources: int, num_shards: int) -> tuple[tuple[int, int], ...]:
    """The engine's shard partition, with empty server shards rejected.

    Delegates to :func:`repro.engine.scenarios.shard_ranges` — one
    formula shared with ``Scenario.build_shard`` — so a served workload
    and an intra-scenario sharded replay agree on which broker owns
    which resource.  Unlike replay merging, a server has no use for a
    shard that owns zero resources, so oversubscription is an error.
    """
    if num_shards > num_resources:
        raise ModelError(
            f"num_shards ({num_shards}) cannot exceed num_resources "
            f"({num_resources})"
        )
    return _shard_ranges(num_resources, num_shards)


class _Shard:
    """One shard: its broker, dispatch queue, worker, and applied log."""

    __slots__ = (
        "index", "lo", "hi", "broker", "queue", "applied", "task",
        "wal", "applied_keys",
    )

    def __init__(
        self, index: int, lo: int, hi: int, broker: LeaseBroker, record: bool
    ):
        self.index = index
        self.lo = lo
        self.hi = hi
        self.broker = broker
        self.queue: asyncio.Queue = asyncio.Queue()
        self.applied: list[Event] | None = [] if record else None
        self.task: asyncio.Task | None = None
        #: Per-shard WAL, None when the server runs without durability.
        self.wal: ShardWal | None = None
        #: Applied-event identity keys for retry dedup (WAL + record
        #: servers only): ``(kind, tenant, resource, applied_time)``.
        self.applied_keys: set[tuple] | None = None


def _applied_key(
    op: str, tenant: str | None, resource: int | None, now: int
) -> tuple:
    """The dedup identity of one applied event.

    ``acquire`` covers renewals — both record an ``Acquire`` in the
    applied stream, so a retried renew matches the acquire key its
    original application left behind.
    """
    if op == "tick":
        return ("tick", None, None, now)
    kind = "acquire" if op in ("acquire", "renew") else "release"
    return (kind, tenant, resource, now)


def _grant_payload(grant) -> dict:
    return {
        "grant_id": grant.grant_id,
        "tenant": grant.tenant,
        "resource": grant.resource,
        "acquired_at": grant.acquired_at,
        "expires_at": grant.expires_at,
        "released_at": grant.released_at,
    }


def trace_context(payload: dict) -> tuple[str, str] | None:
    """``(trace_id, parent_span_id)`` hex words from an envelope, if any.

    Shared by the server and the cluster router.  Malformed contexts
    decode to ``None`` — tracing is observation and must never fail the
    op that carried it.
    """
    raw = payload.get("trace")
    if raw is None:
        return None
    parsed = parse_trace(raw)
    if parsed is None:
        return None
    return f"{parsed[0]:016x}", f"{parsed[1]:016x}"


class LeaseServer:
    """A lease broker served over asyncio TCP and/or unix sockets.

    Args:
        schedule: lease types backing every shard broker.
        num_resources: size of the resource id space ``[0, num_resources)``.
        num_shards: contiguous resource shards (one broker + one worker
            each); must not exceed ``num_resources``.
        policy_factory: per-resource policy override, passed through to
            each shard's :class:`~repro.engine.broker.LeaseBroker`.
        record: keep a per-shard log of *applied* events (clock-ratcheted
            times) for the ``trace`` op and serialized-replay checks.
        session_window: per-tenant in-flight request bound.
        idle_timeout: seconds before an idle tenant session is reaped.
        sweep_interval: seconds between reaper sweeps.
        metrics: live instrumentation registry; ``None`` (the default)
            serves with a disabled registry — null instruments, no
            per-op sampling, nothing rendered into the ``metrics`` verb
            beyond the scrape-time broker/session export.
        trace: per-op JSONL span sink; ``None`` disables tracing.
        wal_dir: root directory for per-shard write-ahead logs
            (``<wal_dir>/shard-<i>/``).  When set, every applied
            mutation is logged before its reply and, on startup, each
            shard recovers snapshot + WAL into a byte-identical broker
            before the listeners open.  ``None`` disables durability.
        fsync: WAL durability policy — ``off`` / ``batch`` (fsync at
            dispatch-queue drain) / ``always`` (fsync per append; the
            only mode under which an acked op survives ``kill -9``).
        snapshot_every: applied events between automatic grant-table
            snapshots (each snapshot truncates the shard's WAL).
    """

    def __init__(
        self,
        schedule: LeaseSchedule,
        num_resources: int,
        num_shards: int = 1,
        policy_factory: PolicyFactory | None = None,
        record: bool = False,
        session_window: int = 64,
        idle_timeout: float = 60.0,
        sweep_interval: float = 5.0,
        metrics: MetricsRegistry | None = None,
        trace: TraceSink | None = None,
        wal_dir: str | Path | None = None,
        fsync: str = "batch",
        snapshot_every: int | None = None,
        history: MetricsHistory | None = None,
        profiler: SamplingProfiler | None = None,
    ):
        # Imported lazily: repro.durable.wal itself imports the wire
        # protocol from this package, so a module-level import here
        # would close an import cycle whenever repro.durable loads
        # first.
        from ..durable.wal import DEFAULT_SNAPSHOT_EVERY, require_fsync_mode

        if num_resources < 1:
            raise ModelError("num_resources must be >= 1")
        self.schedule = schedule
        self.num_resources = num_resources
        self.ranges = shard_ranges(num_resources, num_shards)
        self._shard_los = [lo for lo, _ in self.ranges]
        self._shards = [
            _Shard(
                index,
                lo,
                hi,
                LeaseBroker(schedule, policy_factory=policy_factory),
                record,
            )
            for index, (lo, hi) in enumerate(self.ranges)
        ]
        self._record = record
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            enabled=False
        )
        self.trace = trace if trace is not None else NULL_TRACE
        #: Sample timestamps at all? One flag read per queue item.
        self._sample = self.metrics.enabled or self.trace.enabled
        self._obs_clock = (
            self.metrics.clock if self.metrics.enabled else self.trace.clock
        )
        self._latency: dict[str, Histogram] = {}
        # None (not a null counter) when disabled: the frame adapters
        # skip the call entirely instead of invoking a no-op.
        self._bytes_in = (
            self.metrics.counter(
                "serve_bytes_in_total",
                help="Request bytes received, frame headers included.",
            )
            if self.metrics.enabled
            else None
        )
        self._bytes_out = (
            self.metrics.counter(
                "serve_bytes_out_total",
                help="Response bytes written, frame headers included.",
            )
            if self.metrics.enabled
            else None
        )
        self.sessions = SessionRegistry(
            window=session_window,
            idle_timeout=idle_timeout,
            refusal_counter=self.metrics.counter(
                "serve_backpressure_refusals_total",
                help="Requests refused because a tenant window was full.",
            ),
            expiry_counter=self.metrics.counter(
                "serve_session_expiries_total",
                help="Idle tenant sessions reaped by the sweeper.",
            ),
        )
        #: WAL records replayed by the last startup recovery.
        self.recovered_events = 0
        self._wal_dir = None if wal_dir is None else Path(wal_dir)
        self._fsync = require_fsync_mode(fsync)
        if snapshot_every is None:
            snapshot_every = DEFAULT_SNAPSHOT_EVERY
        if snapshot_every < 1:
            raise ModelError("snapshot_every must be >= 1")
        self._snapshot_every = snapshot_every
        self._recovered = False
        self._dedup_hits = (
            self.metrics.counter(
                "serve_retry_dedup_total",
                help="Retry-marked mutations answered from the applied log.",
            )
            if self.metrics.enabled
            else None
        )
        self._sweep_interval = sweep_interval
        # History rides the live registry (disabled registry -> disabled
        # ring); the profiler is always mountable but costs nothing
        # until a capture starts it.
        self.history = (
            history if history is not None else MetricsHistory(self.metrics)
        )
        self.profiler = (
            profiler if profiler is not None else SamplingProfiler()
        )
        self._profile_lock = asyncio.Lock()
        self._history_task: asyncio.Task | None = None
        self._state = "serving"
        self._servers: list[asyncio.base_events.Server] = []
        self._writers: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._reaper: asyncio.Task | None = None
        self._stopped = asyncio.Event()
        self._shutdown_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current lifecycle state: serving, draining, or stopped."""
        return self._state

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def _ensure_workers(self) -> None:
        if self._shards[0].task is not None:
            return
        if self._wal_dir is not None and not self._recovered:
            self._recover()
        for shard in self._shards:
            shard.task = asyncio.create_task(
                self._worker(shard), name=f"serve-shard-{shard.index}"
            )
        self._reaper = asyncio.create_task(
            self._sweep_sessions(), name="serve-session-reaper"
        )
        if self.history.enabled:
            self._history_task = asyncio.create_task(
                self._sample_history(), name="serve-history-sampler"
            )

    # ------------------------------------------------------------------
    # Durable recovery: replay snapshot + WAL before accepting traffic
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild every shard broker from its snapshot + WAL.

        Runs synchronously before the first listener opens — a worker
        never serves a request against un-recovered state.  Restoring a
        snapshot and replaying the log's tail reproduces the
        pre-crash broker byte for byte (the :mod:`repro.durable`
        invariant the tests pin down); the applied-event log and the
        retry-dedup key set are rebuilt alongside so the ``trace`` op
        and exactly-once retries survive the restart too.
        """
        from ..durable.wal import ShardWal, recover_shard

        self._recovered = True
        recovered_total = 0
        hist = (
            self.metrics.histogram(
                "durable_recovery_seconds",
                help="Per-shard snapshot+WAL recovery time.",
            )
            if self.metrics.enabled
            else None
        )
        for shard in self._shards:
            started = _time.perf_counter()
            directory = self._wal_dir / f"shard-{shard.index}"
            recovery = recover_shard(directory)
            if recovery.state is not None:
                shard.broker.restore_state(recovery.state)
            if shard.applied is not None and recovery.applied is not None:
                shard.applied.extend(
                    event_from_payload(payload)
                    for payload in recovery.applied
                )
            broker = shard.broker
            applied = shard.applied
            for record in recovery.records:
                op = record["op"]
                when = record["time"]
                if op == "acquire":
                    broker._acquire(record["tenant"], record["resource"], when)
                    if applied is not None:
                        applied.append(
                            Acquire(
                                time=when,
                                tenant=record["tenant"],
                                resource=record["resource"],
                            )
                        )
                elif op == "release":
                    broker._release(record["tenant"], record["resource"], when)
                    if applied is not None:
                        applied.append(
                            Release(
                                time=when,
                                tenant=record["tenant"],
                                resource=record["resource"],
                            )
                        )
                elif op == "tick":
                    broker.tick(when)
                    if applied is not None:
                        applied.append(Tick(time=when))
            shard.wal = ShardWal(
                directory,
                fsync=self._fsync,
                metrics=self.metrics if self.metrics.enabled else None,
                shard=shard.index,
            )
            shard.wal.seq = recovery.last_seq
            if applied is not None:
                shard.applied_keys = {
                    _applied_key(
                        "acquire" if isinstance(event, Acquire) else
                        "release" if isinstance(event, Release) else "tick",
                        getattr(event, "tenant", None),
                        getattr(event, "resource", None),
                        event.time,
                    )
                    for event in applied
                }
            recovered_total += recovery.events
            if self.metrics.enabled:
                self.metrics.counter(
                    "wal_recovered_events_total",
                    help="WAL records replayed at startup.",
                    shard=str(shard.index),
                ).inc(recovery.events)
            if hist is not None:
                hist.observe(_time.perf_counter() - started)
        self.recovered_events = recovered_total

    async def start_unix(self, path: str) -> None:
        """Start serving on a unix socket at ``path``."""
        self._ensure_workers()
        server = await asyncio.start_unix_server(
            self._handle_connection, path=path
        )
        self._servers.append(server)

    async def start_tcp(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        reuse_port: bool = False,
    ) -> int:
        """Start serving on TCP; returns the bound port.

        ``reuse_port=True`` binds with ``SO_REUSEPORT`` so replicas can
        share a port (the cluster router uses this for its control
        plane; a lone lease server rarely wants it).
        """
        self._ensure_workers()
        server = await asyncio.start_server(
            self._handle_connection, host=host, port=port,
            reuse_port=reuse_port or None,
        )
        self._servers.append(server)
        return server.sockets[0].getsockname()[1]

    def drain(self) -> str:
        """Refuse new acquires; keep serving renews and releases."""
        if self._state == "serving":
            self._state = "draining"
        return self._state

    def undrain(self) -> str:
        """Resume admitting acquires after a drain (stopped stays stopped)."""
        if self._state == "draining":
            self._state = "serving"
        return self._state

    async def shutdown(self) -> None:
        """Graceful stop: close listeners, empty queues, stop workers."""
        if self._state == "stopped":
            await self._stopped.wait()
            return
        self._state = "stopped"
        for server in self._servers:
            server.close()
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:
                pass
        if self._shards[0].task is not None:
            for shard in self._shards:
                await shard.queue.join()  # every enqueued request answered
                shard.queue.put_nowait(_STOP)
            await asyncio.gather(
                *(shard.task for shard in self._shards),
                return_exceptions=True,
            )
            # A mutation that passed its state check just before the flip
            # can slip in behind _STOP; fail it rather than strand its
            # future (and the connection handler awaiting it) forever.
            for shard in self._shards:
                while not shard.queue.empty():
                    item = shard.queue.get_nowait()
                    shard.queue.task_done()
                    if item is _STOP:
                        continue
                    future = item[-1]
                    if not future.done():
                        future.set_exception(
                            ServeError("unavailable", "server is stopped")
                        )
        for shard in self._shards:
            if shard.wal is not None:
                # Graceful stop: fold the tail into a final snapshot so
                # the next start recovers without replaying the log.
                if shard.wal.appended_since_snapshot:
                    self._maybe_snapshot_now(shard)
                shard.wal.close()
        for periodic in (self._reaper, self._history_task):
            if periodic is not None:
                periodic.cancel()
                try:
                    await periodic
                except asyncio.CancelledError:
                    pass
        self.profiler.stop()
        for writer in tuple(self._writers):
            writer.close()
        # Let every connection handler notice its closed transport and
        # unwind before the loop is torn down under it.
        lingering = [
            task
            for task in tuple(self._conn_tasks)
            if task is not asyncio.current_task()
        ]
        if lingering:
            await asyncio.gather(*lingering, return_exceptions=True)
        self.trace.flush()
        self._stopped.set()

    async def run_until_stopped(self) -> None:
        """Block until :meth:`shutdown` completes."""
        await self._stopped.wait()

    # ------------------------------------------------------------------
    # Shard workers: the only code that touches a broker
    # ------------------------------------------------------------------
    def _latency_hist(self, op: str) -> Histogram:
        hist = self._latency.get(op)
        if hist is None:
            hist = self._latency[op] = self.metrics.histogram(
                "serve_op_latency_seconds",
                help="Per-op latency from enqueue to reply, by op kind.",
                op=op,
            )
        return hist

    async def _worker(self, shard: _Shard) -> None:
        queue = shard.queue
        broker = shard.broker
        while True:
            item = await queue.get()
            if item is _STOP:
                queue.task_done()
                return
            (op, tenant, resource, when, req_id, retry, t_enq, trace_ctx,
             future) = item
            t_disp = self._obs_clock() if self._sample else 0.0
            try:
                result = self._apply_to_shard(
                    shard, broker, op, tenant, resource, when, retry
                )
            except ServeError as exc:
                if not future.cancelled():
                    future.set_exception(exc)
            except ModelError as exc:
                if not future.cancelled():
                    future.set_exception(ServeError("model", str(exc)))
            except Exception as exc:  # pragma: no cover - defensive
                if not future.cancelled():
                    future.set_exception(
                        ServeError("model", f"{type(exc).__name__}: {exc}")
                    )
            else:
                if not future.cancelled():
                    future.set_result(result)
            finally:
                if self._sample:
                    t_reply = self._obs_clock()
                    self._latency_hist(op).observe(t_reply - t_enq)
                    if trace_ctx is None:
                        self.trace.span(
                            op=op,
                            tenant=tenant,
                            resource=resource,
                            request_id=req_id,
                            t_enq=t_enq,
                            t_disp=t_disp,
                            t_reply=t_reply,
                        )
                    else:
                        # The dispatch span inherits the envelope's trace
                        # context: same trace id, parented to the hop
                        # that forwarded the frame here.
                        self.trace.span(
                            op=op,
                            tenant=tenant,
                            resource=resource,
                            request_id=req_id,
                            t_enq=t_enq,
                            t_disp=t_disp,
                            t_reply=t_reply,
                            trace=trace_ctx[0],
                            span_id=new_id(),
                            parent=trace_ctx[1],
                            kind="dispatch",
                        )
                queue.task_done()
                if shard.wal is not None and queue.qsize() == 0:
                    # Burst boundary: the queue drained, so under
                    # fsync="batch" everything applied this burst goes
                    # durable in one fsync.
                    shard.wal.flush()

    def _maybe_snapshot(self, shard: _Shard) -> None:
        if shard.wal.appended_since_snapshot >= self._snapshot_every:
            self._maybe_snapshot_now(shard)

    def _maybe_snapshot_now(self, shard: _Shard) -> None:
        applied = (
            None
            if shard.applied is None
            else [event_to_payload(event) for event in shard.applied]
        )
        shard.wal.write_snapshot(
            shard.broker.snapshot_state(), applied=applied
        )

    def _dedup_reply(
        self,
        broker: LeaseBroker,
        op: str,
        tenant: str | None,
        resource: int | None,
        now: int,
    ) -> dict:
        """Synthesize the reply for an already-applied retried mutation.

        The broker is left untouched — the whole point — so the reply is
        reconstructed from current state: an acquire/renew reports the
        tenant's live grant (if it still has one), a release reports the
        grant as already gone.
        """
        if self._dedup_hits is not None:
            self._dedup_hits.inc()
        if op == "tick":
            return {"applied_time": now}
        if op == "release":
            return {"grant": None, "applied_time": now}
        grants = broker.active_leases(resource=resource, tenant=tenant)
        grant = _grant_payload(grants[0]) if grants else None
        return {"grant": grant, "applied_time": now}

    def _apply_to_shard(
        self,
        shard: _Shard,
        broker: LeaseBroker,
        op: str,
        tenant: str | None,
        resource: int | None,
        when: int | None,
        retry: bool = False,
    ) -> dict:
        if op in MUTATION_OPS:
            # Ratchet stale times to the shard clock: the request reaches
            # this broker *now*, whatever day its tenant believes it is.
            now = when if when >= broker.clock else broker.clock
            keys = shard.applied_keys
            key = None
            if keys is not None:
                # Exactly-once under crash-retry: a retry-marked frame
                # whose applied identity is already in the log was
                # applied before the sender lost the reply — answer it
                # without touching the broker.  Unmarked traffic never
                # consults the set, so legitimate repeats (same-day
                # re-acquires) behave exactly as without a WAL.
                key = _applied_key(op, tenant, resource, now)
                if retry and key in keys:
                    return self._dedup_reply(broker, op, tenant, resource, now)
            wal = shard.wal
            if op == "acquire":
                grant = broker.acquire(tenant, resource, now)
                if keys is not None:
                    keys.add(key)
                if shard.applied is not None:
                    shard.applied.append(
                        Acquire(time=now, tenant=tenant, resource=resource)
                    )
                if wal is not None:
                    wal.append("acquire", now, tenant=tenant, resource=resource)
                    self._maybe_snapshot(shard)
                return {"grant": _grant_payload(grant), "applied_time": now}
            if op == "renew":
                grant = broker.renew(tenant, resource, now)
                if keys is not None:
                    keys.add(key)
                if shard.applied is not None:
                    shard.applied.append(
                        Acquire(time=now, tenant=tenant, resource=resource)
                    )
                if wal is not None:
                    # Renewals enter the WAL as acquires, mirroring the
                    # applied-trace stream: replay reproduces the same
                    # acquire-or-renew classification from broker state.
                    wal.append("acquire", now, tenant=tenant, resource=resource)
                    self._maybe_snapshot(shard)
                return {"grant": _grant_payload(grant), "applied_time": now}
            if op == "release":
                grant = broker.release(tenant, resource, now)
                if keys is not None:
                    keys.add(key)
                if shard.applied is not None:
                    shard.applied.append(
                        Release(time=now, tenant=tenant, resource=resource)
                    )
                if wal is not None:
                    wal.append("release", now, tenant=tenant, resource=resource)
                    self._maybe_snapshot(shard)
                return {
                    "grant": None if grant is None else _grant_payload(grant),
                    "applied_time": now,
                }
            # op == "tick"
            broker.tick(now)
            if keys is not None:
                keys.add(key)
            if shard.applied is not None:
                shard.applied.append(Tick(time=now))
            if wal is not None:
                wal.append("tick", now)
                self._maybe_snapshot(shard)
            return {"applied_time": now}
        if op == "stats":
            return {
                "index": shard.index,
                "lo": shard.lo,
                "hi": shard.hi,
                "clock": broker.clock,
                "num_active": broker.num_active,
                "stats": broker.stats.as_dict(),
                "stats_full": broker.stats.full_dict(),
                "grant_table": broker.num_grants,
                "expiry_heap": broker.heap_size,
                # Queue length observed by the barrier itself: the number
                # of requests that arrived behind this stats op.
                "queue_depth": shard.queue.qsize(),
            }
        if op == "report":
            leases = broker.leases
            return {
                "index": shard.index,
                "cost": sum(lease.cost for lease in leases),
                "leases": [
                    [
                        lease.resource,
                        lease.type_index,
                        lease.start,
                        lease.length,
                        lease.cost,
                    ]
                    for lease in leases
                ],
                "stats": broker.stats.mergeable(),
                "num_active": broker.num_active,
                "num_demands": broker.stats.acquires + broker.stats.renewals,
            }
        if op == "trace":
            if shard.applied is None:
                raise ServeError(
                    "unavailable",
                    "server was started without record=True; no applied "
                    "trace is kept",
                )
            return {
                "index": shard.index,
                "lo": shard.lo,
                "hi": shard.hi,
                "events": [event_to_payload(e) for e in shard.applied],
            }
        if op == "leases":
            # The live lease book, observed through the dispatch queue so
            # it is a barrier like stats: it sees every mutation enqueued
            # before it.  Lease ids are "<shard>:<grant_id>" — stable
            # handles for the admin plane's force-release.
            return {
                "index": shard.index,
                "clock": broker.clock,
                "leases": [
                    dict(
                        _grant_payload(grant),
                        lease_id=f"{shard.index}:{grant.grant_id}",
                    )
                    for grant in broker.active_leases()
                ],
            }
        raise ServeError("protocol", f"unhandled shard op {op!r}")

    async def _sweep_sessions(self) -> None:
        while True:
            await asyncio.sleep(self._sweep_interval)
            self.sessions.expire_idle()

    async def _sample_history(self) -> None:
        # asyncio.sleep paces the loop; the sample's own timestamp comes
        # from the ring's injectable clock, so sleep jitter never skews
        # the recorded rates.
        while True:
            await asyncio.sleep(self.history.interval)
            self.history.sample()

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    def _shard_of(self, resource: int) -> _Shard:
        # Ranges are contiguous and exhaustive over [0, num_resources),
        # so the owning shard is the last one starting at or before the
        # resource — one bisect on the range starts.
        where = bisect.bisect_right(self._shard_los, resource) - 1
        return self._shards[where]

    async def _enqueue(
        self,
        shard: _Shard,
        op: str,
        tenant: str | None,
        resource: int | None,
        when: int | None,
        req_id=None,
        retry: bool = False,
        trace: tuple[str, str] | None = None,
    ) -> dict:
        future = asyncio.get_running_loop().create_future()
        t_enq = self._obs_clock() if self._sample else 0.0
        shard.queue.put_nowait(
            (op, tenant, resource, when, req_id, retry, t_enq, trace, future)
        )
        return await future

    async def _broadcast(
        self, op: str, when: int | None = None
    ) -> list[dict]:
        return list(
            await asyncio.gather(
                *(
                    self._enqueue(shard, op, None, None, when)
                    for shard in self._shards
                )
            )
        )

    async def _apply(self, op: str, payload: dict) -> dict:
        when = field_time(payload)
        retry = payload.get("retry") is True
        trace = trace_context(payload)
        if self._state == "stopped":
            raise ServeError("unavailable", "server is stopped")
        if op == "tick":
            applied = await asyncio.gather(
                *(
                    self._enqueue(
                        shard, "tick", None, None, when, retry=retry,
                        trace=trace,
                    )
                    for shard in self._shards
                )
            )
            return {"applied_time": max(r["applied_time"] for r in applied)}
        tenant = field_tenant(payload)
        resource = field_resource(payload, self.num_resources)
        if op == "acquire" and self._state != "serving":
            raise ServeError(
                "draining", "server is draining; new acquires are refused"
            )
        session = self.sessions.try_acquire(tenant)
        if session is None:
            raise ServeError(
                "backpressure",
                f"tenant {tenant!r} exceeded its in-flight window "
                f"({self.sessions.window})",
            )
        try:
            return await self._enqueue(
                self._shard_of(resource), op, tenant, resource, when,
                payload.get("id"), retry, trace,
            )
        finally:
            self.sessions.release(session)

    def _hello(self) -> dict:
        return {
            "server": "repro.serve",
            "protocol": PROTOCOL_VERSION,
            "trace": True,
            "state": self._state,
            "record": self._record,
            "wal": self._wal_dir is not None,
            "fsync": self._fsync if self._wal_dir is not None else None,
            "num_resources": self.num_resources,
            "num_shards": self.num_shards,
            "ranges": [list(r) for r in self.ranges],
            "schedule": {
                "num_types": self.schedule.num_types,
                "lengths": [t.length for t in self.schedule],
                "costs": [t.cost for t in self.schedule],
            },
        }

    async def _control(self, op: str, payload: dict | None = None) -> dict:
        # `hello` never reaches here: the connection loop intercepts it
        # (codec negotiation needs the payload for codec negotiation).
        if op == "route":
            # In the protocol for the cluster router's handshake; a
            # lone server has no fleet to hand out.
            raise ServeError(
                "protocol",
                "route needs a cluster router; this is a single lease "
                "server — dial it directly",
            )
        if op == "stats":
            return {
                "state": self._state,
                "sessions": self.sessions.snapshot(),
                "shards": await self._broadcast("stats"),
            }
        if op == "report":
            return {"shards": await self._broadcast("report")}
        if op == "trace":
            return {"shards": await self._broadcast("trace")}
        if op == "metrics":
            return {"text": self.render_metrics(await self._broadcast("stats"))}
        if op == "leases":
            return {"shards": await self._broadcast("leases")}
        if op == "spans":
            return {"spans": self.spans((payload or {}).get("trace"))}
        if op == "drain":
            return {"state": self.drain()}
        if op == "undrain":
            return {"state": self.undrain()}
        raise ServeError("protocol", f"unknown op {op!r}")

    def render_metrics(self, shard_stats: list[dict]) -> str:
        """The process's Prometheus text exposition, from a stats barrier.

        Scrape-time families (broker counters/gauges, session totals,
        queue depths) are folded into a fresh registry from the
        broadcast payloads; the live registry's families (latency
        histograms, byte and refusal counters) are appended when metrics
        are enabled.  The two renders use disjoint family names, so the
        concatenation is itself a valid exposition.
        """
        registry = MetricsRegistry(clock=self.metrics.clock)
        export_shards(registry, shard_stats)
        export_sessions(registry, self.sessions.snapshot())
        text = registry.render_prometheus()
        if self.metrics.enabled:
            text += self.metrics.render_prometheus()
        return text

    def spans(self, trace_id: str | None = None) -> list[dict]:
        """This process's live spans (the ``spans`` verb's answer).

        Flushed-buffer-plus-file, via :meth:`TraceSink.live_spans` — so
        the answer includes spans a pre-crash incarnation wrote.  With
        ``trace_id``, only that trace's spans.
        """
        spans = self.trace.live_spans()
        if trace_id is not None:
            spans = [s for s in spans if s.get("trace") == trace_id]
        return spans

    # ------------------------------------------------------------------
    # Admin backend — the surface repro.admin.AdminPlane mounts over HTTP
    # ------------------------------------------------------------------
    async def admin_metrics(self) -> str:
        """The ``GET /metrics`` exposition (rides the stats barrier)."""
        return self.render_metrics(await self._broadcast("stats"))

    def admin_health(self) -> dict:
        """Liveness: the process is up and can say what state it is in.

        Carries the per-tenant session rows (in-flight, served,
        rejected, idle seconds) so one curl answers both "is it up" and
        "who is talking to it".
        """
        return {
            "state": self._state,
            "shards": self.num_shards,
            "wal": self._wal_dir is not None,
            "recovered_events": self.recovered_events,
            "sessions": self.sessions.tenant_snapshot(),
        }

    def admin_ready(self) -> tuple[bool, dict]:
        """Readiness: recovery complete and every shard accepting work.

        Readiness is stricter than liveness: a WAL'd server that has not
        finished recovery, or one that is draining or stopped, is alive
        but not ready — a load balancer should not send it acquires.
        """
        workers_up = self._shards[0].task is not None
        recovered = self._wal_dir is None or self._recovered
        ready = workers_up and recovered and self._state == "serving"
        return ready, {
            "ready": ready,
            "state": self._state,
            "workers_up": workers_up,
            "recovered": recovered,
        }

    async def admin_leases(
        self, tenant: str | None = None, resource: int | None = None
    ) -> list[dict]:
        """The live lease book, folded across shards, filtered, sorted.

        Rides the ``leases`` dispatch-queue barrier, so the book reflects
        every mutation enqueued before the call.  Sorted by (resource,
        tenant, lease_id) — a stable order for pagination.
        """
        shards = await self._broadcast("leases")
        book = [
            lease
            for shard in shards
            for lease in shard["leases"]
            if (tenant is None or lease["tenant"] == tenant)
            and (resource is None or lease["resource"] == resource)
        ]
        book.sort(key=lambda l: (l["resource"], l["tenant"], l["lease_id"]))
        return book

    async def admin_force_release(self, lease_id: str) -> dict | None:
        """Durably force-release one lease by its ``<shard>:<grant_id>`` id.

        The mutation is injected through the normal dispatch path — an
        ordinary ``release`` frame with ``time=0`` (clock-ratcheted to
        the owning shard's today) — so it rides the WAL, lands in the
        applied trace as a replayable :class:`Release`, and carries the
        same retry-dedup identity as any client release.  Returns the
        reply payload, or ``None`` when no live lease has that id.
        """
        book = await self.admin_leases()
        lease = next((l for l in book if l["lease_id"] == lease_id), None)
        if lease is None:
            return None
        result = await self._apply(
            "release",
            {"tenant": lease["tenant"], "resource": lease["resource"],
             "time": 0},
        )
        return {"lease_id": lease_id, "released": dict(lease), **result}

    def admin_drain(self, worker: int) -> str | None:
        """Drain this process (a single server is worker 0, only)."""
        if worker != 0:
            return None
        return self.drain()

    def admin_undrain(self, worker: int) -> str | None:
        if worker != 0:
            return None
        return self.undrain()

    def admin_trace(self, trace_id: str) -> list[dict] | None:
        """The span tree for one trace id from this process's sink.

        Flushes the sink first so spans emitted moments ago are visible.
        Returns the nested payload, or ``None`` when tracing is off or
        the id has left no spans here.
        """
        if not self.trace.enabled:
            return None
        trees = build_trace_trees(self.spans(trace_id))
        roots = trees.get(trace_id)
        if not roots:
            return None
        return trace_tree_payload(roots)

    def admin_history(
        self, family: str | None = None, window: float | None = None
    ) -> dict:
        """``GET /metrics/history``: windowed deltas/rates from the ring."""
        return self.history.query(family=family, window=window)

    async def admin_profile(self, seconds: float) -> dict:
        """``GET /profile?seconds=``: capture and aggregate stacks.

        Starts the sampler only if it is not already running (an
        externally driven capture keeps its window), sleeps out the
        requested capture, and returns the aggregated snapshot.
        Serialized: concurrent captures queue rather than clobbering
        each other's windows.
        """
        async with self._profile_lock:
            started_here = not self.profiler.running
            if started_here:
                self.profiler.clear()
                self.profiler.start()
            try:
                await asyncio.sleep(seconds)
            finally:
                if started_here:
                    self.profiler.stop()
            return self.profiler.snapshot()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        write_lock = asyncio.Lock()
        inflight: set[asyncio.Task] = set()
        # One mutable slot per connection: `hello` may upgrade the codec
        # mid-stream, and every response written after the upgrade —
        # including mutations already in flight — uses the new encoding
        # (receivers decode both codecs, so the cutover point is free).
        codec_ref = [CODEC_JSON]
        try:
            while True:
                try:
                    payload = await read_frame(reader, self._bytes_in)
                except ProtocolError as exc:
                    # The byte stream is unparseable from here on: name
                    # the violation, then hang up rather than resync.
                    await self._respond(
                        writer, write_lock,
                        error(None, "protocol", str(exc)), codec_ref,
                    )
                    break
                if payload is None:
                    break
                request_id = payload.get("id")
                op = payload.get("op")
                if op in MUTATION_OPS:
                    # Pipelining: each mutation runs as its own task so a
                    # connection can have many requests in the shard
                    # queues at once; responses return in completion
                    # order, matched by id.
                    mutation = asyncio.create_task(
                        self._serve_mutation(
                            op, payload, request_id, writer, write_lock,
                            codec_ref,
                        )
                    )
                    inflight.add(mutation)
                    mutation.add_done_callback(inflight.discard)
                    continue
                if op == "hello":
                    # Codec negotiation happens here, where the payload
                    # is visible: an explicit `codec` field renegotiates
                    # this connection (unknown values settle on JSON); a
                    # hello *without* the field is a plain introspection
                    # and leaves the current codec untouched.
                    if "codec" in payload:
                        codec_ref[0] = negotiate_codec(payload.get("codec"))
                    result = self._hello()
                    result["codec"] = codec_ref[0]
                    await self._respond(
                        writer, write_lock, ok(request_id, result), codec_ref
                    )
                    continue
                if op == "shutdown":
                    await self._respond(
                        writer, write_lock,
                        ok(request_id, {"state": "stopped"}), codec_ref,
                    )
                    self._shutdown_task = asyncio.create_task(self.shutdown())
                    break
                if op not in OPS:
                    await self._respond(
                        writer,
                        write_lock,
                        error(
                            request_id,
                            "protocol",
                            f"unknown op {op!r}; known: {', '.join(OPS)}",
                        ),
                        codec_ref,
                    )
                    continue
                try:
                    result = await self._control(op, payload)
                    frame = ok(request_id, result)
                except ServeError as exc:
                    frame = error(request_id, exc.kind, exc.message)
                await self._respond(writer, write_lock, frame, codec_ref)
        finally:
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _serve_mutation(
        self, op, payload, request_id, writer, write_lock, codec_ref
    ) -> None:
        try:
            result = await self._apply(op, payload)
            frame = ok(request_id, result)
        except ServeError as exc:
            frame = error(request_id, exc.kind, exc.message)
        await self._respond(writer, write_lock, frame, codec_ref)

    async def _respond(self, writer, write_lock, frame: dict, codec_ref) -> None:
        async with write_lock:
            try:
                await write_frame(writer, frame, codec_ref[0], self._bytes_out)
            except (ConnectionError, RuntimeError, OSError):
                pass  # client went away; its response has nowhere to go


class ServerThread:
    """Host a :class:`LeaseServer`'s event loop in a daemon thread.

    The synchronous world's handle on the server: start it, read the
    bound addresses, and stop it — everything else happens over sockets.
    The thread owns the loop and the server outright (the ownership
    contract above); the creating thread must not touch the server
    object after :meth:`start`.
    """

    def __init__(
        self,
        server: LeaseServer,
        unix_path: str | None = None,
        tcp: tuple[str, int] | None = None,
    ):
        if unix_path is None and tcp is None:
            raise ModelError("ServerThread needs a unix path or a TCP address")
        self._server = server
        self._unix_path = unix_path
        self._tcp = tcp
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self.tcp_port: int | None = None

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ModelError("serve thread failed to start in time")
        if self._error is not None:
            raise ModelError(f"serve thread failed: {self._error}")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - defensive
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        try:
            if self._unix_path is not None:
                await self._server.start_unix(self._unix_path)
            if self._tcp is not None:
                self.tcp_port = await self._server.start_tcp(*self._tcp)
            self._loop = asyncio.get_running_loop()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._server.run_until_stopped()

    def stop(self, timeout: float = 10.0) -> None:
        """Shut the server down and join the thread."""
        if self._thread is None:
            return
        if self._loop is not None and self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self._server.shutdown(), self._loop
            )
            try:
                future.result(timeout)
            except Exception:
                pass
        self._thread.join(timeout)
