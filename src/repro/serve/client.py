"""Clients for the lease-serving wire protocol: async and sync.

:class:`AsyncLeaseClient` is the pipelining client the loadgen tenants
use: one connection, any number of in-flight requests, responses matched
back to awaiting callers by request id by a background reader task.
:class:`AsyncClientPool` spreads calls round-robin over a fixed set of
such connections.  :class:`LeaseClient` is the blocking counterpart for
synchronous callers (scripts, tests, CLIs without an event loop): one
socket, sequential calls, an explicit :meth:`LeaseClient.pipeline` for
batched round trips, and optional transparent reconnect — a call that
hits a dead connection redials (retrying the connect for a bounded
window) and resends once, which is what lets a client ride through a
server restart.

Both clients raise :class:`~repro.serve.protocol.ServeError` when the
server answers with an error frame, with the frame's ``kind`` preserved.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import time
from typing import Any, Sequence

from ..errors import ModelError
from .protocol import (
    ProtocolError,
    ServeError,
    parse_response,
    read_frame,
    recv_frame,
    request,
    send_frame,
    write_frame,
)


class AsyncLeaseClient:
    """One pipelined protocol connection on the running event loop.

    Construct through :meth:`open_unix` / :meth:`open_tcp`; both accept a
    ``retry_for`` window during which connection refusals are retried —
    the standard way to wait for a server that is still binding its
    socket.
    """

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._send_lock = asyncio.Lock()
        self._reader_task = asyncio.create_task(self._read_loop())

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    async def open_unix(
        cls, path: str, retry_for: float = 5.0
    ) -> "AsyncLeaseClient":
        reader, writer = await _retry_connect(
            lambda: asyncio.open_unix_connection(path), retry_for
        )
        return cls(reader, writer)

    @classmethod
    async def open_tcp(
        cls, host: str, port: int, retry_for: float = 5.0
    ) -> "AsyncLeaseClient":
        reader, writer = await _retry_connect(
            lambda: asyncio.open_connection(host, port), retry_for
        )
        return cls(reader, writer)

    # ------------------------------------------------------------------
    # Core call machinery
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                payload = await read_frame(self._reader)
                if payload is None:
                    break
                future = self._pending.pop(payload.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(payload)
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("server closed the connection")
                    )
            self._pending.clear()

    async def call(self, op: str, **fields: Any) -> dict:
        """One request/response round trip; pipelines freely across tasks."""
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            async with self._send_lock:
                await write_frame(
                    self._writer, request(op, request_id, **fields)
                )
        except BaseException:
            self._pending.pop(request_id, None)
            raise
        return parse_response(await future)

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Op surface
    # ------------------------------------------------------------------
    async def hello(self) -> dict:
        return await self.call("hello")

    async def acquire(self, tenant: str, resource: int, time: int) -> dict:
        return await self.call(
            "acquire", tenant=tenant, resource=resource, time=time
        )

    async def renew(self, tenant: str, resource: int, time: int) -> dict:
        return await self.call(
            "renew", tenant=tenant, resource=resource, time=time
        )

    async def release(self, tenant: str, resource: int, time: int) -> dict:
        return await self.call(
            "release", tenant=tenant, resource=resource, time=time
        )

    async def tick(self, time: int) -> dict:
        return await self.call("tick", time=time)

    async def stats(self) -> dict:
        return await self.call("stats")

    async def report(self) -> dict:
        return await self.call("report")

    async def trace(self) -> dict:
        return await self.call("trace")

    async def drain(self) -> dict:
        return await self.call("drain")

    async def shutdown(self) -> dict:
        return await self.call("shutdown")


async def _retry_connect(factory, retry_for: float):
    deadline = time.monotonic() + retry_for
    while True:
        try:
            return await factory()
        except (ConnectionRefusedError, FileNotFoundError, OSError):
            if time.monotonic() >= deadline:
                raise
            await asyncio.sleep(0.05)


class AsyncClientPool:
    """A fixed pool of pipelined connections, dealt out round-robin.

    ``call`` hands each request to the next connection in turn, so many
    concurrent callers spread over every socket while each individual
    request stays an ordinary pipelined call.
    """

    def __init__(self, clients: Sequence[AsyncLeaseClient]):
        if not clients:
            raise ModelError("AsyncClientPool needs at least one client")
        self._clients = tuple(clients)
        self._cursor = itertools.cycle(range(len(self._clients)))

    @classmethod
    async def open_unix(
        cls, path: str, size: int = 4, retry_for: float = 5.0
    ) -> "AsyncClientPool":
        clients = [
            await AsyncLeaseClient.open_unix(path, retry_for=retry_for)
            for _ in range(size)
        ]
        return cls(clients)

    def __len__(self) -> int:
        return len(self._clients)

    def client(self) -> AsyncLeaseClient:
        """The next connection in round-robin order."""
        return self._clients[next(self._cursor)]

    async def call(self, op: str, **fields: Any) -> dict:
        return await self.client().call(op, **fields)

    async def close(self) -> None:
        for client in self._clients:
            await client.close()


class LeaseClient:
    """Blocking protocol client with bounded-retry connect and reconnect.

    Args:
        path: unix-socket path (exclusive with ``host``/``port``).
        host, port: TCP address (exclusive with ``path``).
        connect_timeout: seconds to keep retrying the initial dial (and
            any redial) while the server is not accepting yet.
        reconnect: when a call hits a dead connection, redial within
            ``connect_timeout`` and resend the request once — the client
            survives a server restart, losing only the in-flight call's
            at-most-once guarantee (mutations here are idempotent
            per-day, so a resend is safe).
    """

    def __init__(
        self,
        path: str | None = None,
        host: str | None = None,
        port: int | None = None,
        connect_timeout: float = 5.0,
        reconnect: bool = True,
    ):
        if (path is None) == (host is None or port is None):
            raise ModelError(
                "LeaseClient needs either a unix path or host+port"
            )
        self._path = path
        self._addr = (host, port) if host is not None else None
        self._connect_timeout = connect_timeout
        self._reconnect = reconnect
        self._ids = itertools.count(1)
        self._sock: socket.socket | None = None

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def connect(self) -> "LeaseClient":
        """Dial the server, retrying refusals until ``connect_timeout``."""
        self.close()
        deadline = time.monotonic() + self._connect_timeout
        while True:
            try:
                if self._path is not None:
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.connect(self._path)
                else:
                    sock = socket.create_connection(self._addr)
                self._sock = sock
                return self
            except (ConnectionRefusedError, FileNotFoundError, OSError):
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "LeaseClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def call(self, op: str, **fields: Any) -> dict:
        """One blocking round trip, transparently redialing once if dead."""
        try:
            return self._call_once(op, fields)
        except (ConnectionError, BrokenPipeError, ProtocolError, OSError):
            if not self._reconnect:
                raise
            self.connect()
            return self._call_once(op, fields)

    def _call_once(self, op: str, fields: dict) -> dict:
        if self._sock is None:
            self.connect()
        request_id = next(self._ids)
        send_frame(self._sock, request(op, request_id, **fields))
        while True:
            payload = recv_frame(self._sock)
            if payload is None:
                raise ConnectionError("server closed the connection")
            if payload.get("id") == request_id:
                return parse_response(payload)

    def pipeline(
        self, requests: Sequence[tuple[str, dict]]
    ) -> list[dict | ServeError]:
        """Send every request before reading any response.

        Returns one entry per request, in request order: the result dict,
        or the :class:`ServeError` that request drew.  Unlike :meth:`call`
        this never resends — a batch that dies mid-flight raises.
        """
        if self._sock is None:
            self.connect()
        ids = []
        for op, fields in requests:
            request_id = next(self._ids)
            ids.append(request_id)
            send_frame(self._sock, request(op, request_id, **fields))
        by_id: dict[int, dict | ServeError] = {}
        wanted = set(ids)
        while wanted:
            payload = recv_frame(self._sock)
            if payload is None:
                raise ConnectionError("server closed mid-pipeline")
            request_id = payload.get("id")
            if request_id not in wanted:
                continue
            wanted.discard(request_id)
            try:
                by_id[request_id] = parse_response(payload)
            except ServeError as exc:
                by_id[request_id] = exc
        return [by_id[request_id] for request_id in ids]

    # Convenience wrappers mirroring the async client.
    def hello(self) -> dict:
        return self.call("hello")

    def acquire(self, tenant: str, resource: int, time: int) -> dict:
        return self.call("acquire", tenant=tenant, resource=resource, time=time)

    def renew(self, tenant: str, resource: int, time: int) -> dict:
        return self.call("renew", tenant=tenant, resource=resource, time=time)

    def release(self, tenant: str, resource: int, time: int) -> dict:
        return self.call("release", tenant=tenant, resource=resource, time=time)

    def tick(self, time: int) -> dict:
        return self.call("tick", time=time)

    def stats(self) -> dict:
        return self.call("stats")

    def report(self) -> dict:
        return self.call("report")

    def trace(self) -> dict:
        return self.call("trace")

    def drain(self) -> dict:
        return self.call("drain")

    def shutdown(self) -> dict:
        return self.call("shutdown")
