"""Clients for the lease-serving wire protocol: async and sync.

:class:`AsyncLeaseClient` is the pipelining client the loadgen tenants
use: one connection, any number of in-flight requests, responses matched
back to awaiting callers by request id by a background reader task.
:class:`AsyncClientPool` spreads calls round-robin over a fixed set of
such connections.  :class:`DirectLeaseClient` is the two-plane cluster
client: it performs the routing handshake (the ``route`` verb) against
a cluster router, then sends mutations straight to the owning worker
over per-worker links, keeping the router only for ticks, barriers,
and staleness probes.  :class:`LeaseClient` is the blocking counterpart for
synchronous callers (scripts, tests, CLIs without an event loop): one
socket, sequential calls, an explicit :meth:`LeaseClient.pipeline` for
batched round trips, and optional transparent reconnect — a call that
hits a dead connection redials (retrying the connect for a bounded
window) and resends once, which is what lets a client ride through a
server restart.

Both clients raise :class:`~repro.serve.protocol.ServeError` when the
server answers with an error frame, with the frame's ``kind`` preserved.
Failure surfaces are typed: a per-op ``deadline`` that expires raises
:class:`~repro.serve.protocol.LeaseTimeoutError`, and a sync call whose
redial/resend *retry budget* runs out raises
:class:`~repro.serve.protocol.LeaseRetryError` naming the attempt count.
Both clients can negotiate the compact binary codec at connect time
(``codec="bin"``): the upgrade is confirmed by the server's ``hello``
response and falls back to JSON against servers that do not speak it.
"""

from __future__ import annotations

import asyncio
import bisect
import itertools
import random
import socket
import time
from typing import Any, Sequence

from ..errors import ModelError
from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_TRACE, TraceSink
from ..obs.tracetree import new_id
from .protocol import (
    CODEC_BIN,
    CODEC_JSON,
    MUTATION_OPS,
    LeaseRetryError,
    LeaseTimeoutError,
    ProtocolError,
    ServeError,
    encode_frame,
    parse_response,
    read_frame,
    recv_frame,
    request,
    send_frame,
    write_frame,
)


class AsyncLeaseClient:
    """One pipelined protocol connection on the running event loop.

    Construct through :meth:`open_unix` / :meth:`open_tcp`; both accept a
    ``retry_for`` window during which connection refusals are retried —
    the standard way to wait for a server that is still binding its
    socket — and an optional ``codec`` to negotiate at open
    (``"bin"`` sends a ``hello`` and upgrades only if confirmed).
    """

    def __init__(self, reader, writer, trace: TraceSink | None = None):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._send_lock = asyncio.Lock()
        self._codec = CODEC_JSON
        #: Client-side span sink; mutations originate a trace context
        #: (and emit a ``kind="client"`` root span) only when this sink
        #: is enabled AND the server advertised trace support at hello.
        self._trace_sink = trace if trace is not None else NULL_TRACE
        self._peer_trace = False
        #: Dial attempts the opening factory spent (1 = first try
        #: connected); the loadgen sums these into its report.
        self.connect_attempts = 1
        self._reader_task = asyncio.create_task(self._read_loop())

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    async def open_unix(
        cls, path: str, retry_for: float = 5.0, codec: str | None = None,
        trace: TraceSink | None = None,
    ) -> "AsyncLeaseClient":
        reader, writer, attempts = await _retry_connect(
            lambda: asyncio.open_unix_connection(path), retry_for
        )
        client = cls(reader, writer, trace=trace)
        client.connect_attempts = attempts
        if codec is not None:
            await client.negotiate(codec)
        elif trace is not None and trace.enabled:
            # No codec preference, but the trace capability still has to
            # be discovered before the first mutation can carry an id.
            await client.hello()
        return client

    @classmethod
    async def open_tcp(
        cls, host: str, port: int, retry_for: float = 5.0,
        codec: str | None = None, trace: TraceSink | None = None,
    ) -> "AsyncLeaseClient":
        reader, writer, attempts = await _retry_connect(
            lambda: asyncio.open_connection(host, port), retry_for
        )
        client = cls(reader, writer, trace=trace)
        client.connect_attempts = attempts
        if codec is not None:
            await client.negotiate(codec)
        elif trace is not None and trace.enabled:
            await client.hello()
        return client

    @property
    def codec(self) -> str:
        """The codec this client currently emits (receives are always dual)."""
        return self._codec

    async def negotiate(self, codec: str) -> dict:
        """Request a wire codec via ``hello``; returns the hello result.

        The connection upgrades only when the server confirms the exact
        codec; any other answer (older server, unknown codec) leaves the
        client speaking JSON, which every server accepts.
        """
        result = await self.call("hello", codec=codec)
        self._codec = (
            CODEC_BIN if result.get("codec") == CODEC_BIN == codec
            else CODEC_JSON
        )
        return result

    # ------------------------------------------------------------------
    # Core call machinery
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                payload = await read_frame(self._reader)
                if payload is None:
                    break
                future = self._pending.pop(payload.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(payload)
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError("server closed the connection")
                    )
            self._pending.clear()

    def _start_span(self, op: str, fields: dict):
        """Attach a fresh trace context to a mutation; ``None`` when off.

        Mutates ``fields`` in place (adds the ``trace`` field) and
        returns the bookkeeping tuple :meth:`_finish_span` closes.
        """
        if not (
            self._peer_trace
            and self._trace_sink.enabled
            and op in MUTATION_OPS
        ):
            return None
        trace_id = new_id()
        span_id = new_id()
        fields["trace"] = f"{trace_id}-{span_id}"
        return (
            trace_id, span_id, op, fields.get("tenant"),
            fields.get("resource"), self._trace_sink.clock(),
        )

    def _finish_span(self, span, request_id: int) -> None:
        trace_id, span_id, op, tenant, resource, t0 = span
        self._trace_sink.span(
            op=op, tenant=tenant, resource=resource, request_id=request_id,
            t_enq=t0, t_disp=t0, t_reply=self._trace_sink.clock(),
            trace=trace_id, span_id=span_id, parent=None, kind="client",
        )

    async def call(self, op: str, **fields: Any) -> dict:
        """One request/response round trip; pipelines freely across tasks."""
        request_id = next(self._ids)
        span = self._start_span(op, fields)
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            async with self._send_lock:
                await write_frame(
                    self._writer, request(op, request_id, **fields),
                    self._codec,
                )
        except BaseException:
            self._pending.pop(request_id, None)
            raise
        try:
            payload = await future
        finally:
            if span is not None:
                self._finish_span(span, request_id)
        result = parse_response(payload)
        if op == "hello":
            self._peer_trace = bool(result.get("trace"))
        return result

    async def call_batch(
        self, requests: Sequence[tuple[str, dict]]
    ) -> list[dict | ServeError]:
        """Send a whole batch with one ``writelines`` flush, then collect.

        The hot-path coalescing primitive: every request frame is encoded
        up front and hits the transport in a single buffered write — one
        syscall's worth of flushing instead of one per op — while the
        responses pipeline back as usual.  Returns one entry per request
        in request order: the result dict or the :class:`ServeError` that
        request drew.
        """
        loop = asyncio.get_running_loop()
        ids: list[int] = []
        futures: list[asyncio.Future] = []
        frames: list[bytes] = []
        spans: list[tuple | None] = []
        for op, fields in requests:
            request_id = next(self._ids)
            # Trace contexts go on a copy — the caller's field dicts are
            # theirs, and a batch must not leave ids behind in them.
            fields = dict(fields)
            spans.append(self._start_span(op, fields))
            # Encode before registering: an encode failure mid-batch
            # must not strand earlier ids in the pending map.
            frame = encode_frame(request(op, request_id, **fields), self._codec)
            ids.append(request_id)
            future = loop.create_future()
            self._pending[request_id] = future
            futures.append(future)
            frames.append(frame)
        try:
            async with self._send_lock:
                self._writer.writelines(frames)
                await self._writer.drain()
        except BaseException:
            for request_id in ids:
                self._pending.pop(request_id, None)
            raise
        results: list[dict | ServeError] = []
        for request_id, future, span in zip(ids, futures, spans):
            try:
                results.append(parse_response(await future))
            except ServeError as exc:
                results.append(exc)
            finally:
                if span is not None:
                    self._finish_span(span, request_id)
        return results

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Op surface
    # ------------------------------------------------------------------
    async def hello(self) -> dict:
        return await self.call("hello")

    async def acquire(self, tenant: str, resource: int, time: int) -> dict:
        return await self.call(
            "acquire", tenant=tenant, resource=resource, time=time
        )

    async def renew(self, tenant: str, resource: int, time: int) -> dict:
        return await self.call(
            "renew", tenant=tenant, resource=resource, time=time
        )

    async def release(self, tenant: str, resource: int, time: int) -> dict:
        return await self.call(
            "release", tenant=tenant, resource=resource, time=time
        )

    async def tick(self, time: int) -> dict:
        return await self.call("tick", time=time)

    async def stats(self) -> dict:
        return await self.call("stats")

    async def report(self) -> dict:
        return await self.call("report")

    async def trace(self) -> dict:
        return await self.call("trace")

    async def drain(self) -> dict:
        return await self.call("drain")

    async def shutdown(self) -> dict:
        return await self.call("shutdown")


#: Dial-retry backoff shape shared by both clients: exponential from
#: ``BASE`` capped at ``CAP``, with full jitter (a uniform factor in
#: [0.5, 1.5)) so a fleet of tenants redialing one restarting server
#: spreads out instead of stampeding each backoff tick together.
CONNECT_BACKOFF_BASE = 0.02
CONNECT_BACKOFF_CAP = 0.5


def _next_backoff(delay: float) -> tuple[float, float]:
    """(jittered sleep for this attempt, grown delay for the next)."""
    return (
        delay * (0.5 + random.random()),
        min(delay * 2.0, CONNECT_BACKOFF_CAP),
    )


async def _retry_connect(factory, retry_for: float):
    """Dial until ``retry_for`` runs out; returns (reader, writer, attempts)."""
    deadline = time.monotonic() + retry_for
    delay = CONNECT_BACKOFF_BASE
    attempts = 0
    while True:
        attempts += 1
        try:
            reader, writer = await factory()
            return reader, writer, attempts
        except (ConnectionRefusedError, FileNotFoundError, OSError):
            now = time.monotonic()
            if now >= deadline:
                raise
            sleep, delay = _next_backoff(delay)
            await asyncio.sleep(min(sleep, deadline - now))


class AsyncClientPool:
    """A fixed pool of pipelined connections, dealt out round-robin.

    ``call`` hands each request to the next connection in turn, so many
    concurrent callers spread over every socket while each individual
    request stays an ordinary pipelined call.
    """

    def __init__(self, clients: Sequence[AsyncLeaseClient]):
        if not clients:
            raise ModelError("AsyncClientPool needs at least one client")
        self._clients = tuple(clients)
        self._cursor = itertools.cycle(range(len(self._clients)))

    @classmethod
    async def open_unix(
        cls, path: str, size: int = 4, retry_for: float = 5.0
    ) -> "AsyncClientPool":
        clients = [
            await AsyncLeaseClient.open_unix(path, retry_for=retry_for)
            for _ in range(size)
        ]
        return cls(clients)

    def __len__(self) -> int:
        return len(self._clients)

    def client(self) -> AsyncLeaseClient:
        """The next connection in round-robin order."""
        return self._clients[next(self._cursor)]

    async def call(self, op: str, **fields: Any) -> dict:
        return await self.client().call(op, **fields)

    async def close(self) -> None:
        for client in self._clients:
            await client.close()


def parse_worker_endpoint(endpoint: str) -> tuple[str, tuple]:
    """Split a ``route`` endpoint string into ``(kind, address)``.

    ``unix:<path>`` -> ``("unix", (path,))``, ``tcp:<host>:<port>`` ->
    ``("tcp", (host, port))``; a bare path is taken as a unix socket.
    Kept local rather than imported from :mod:`repro.cluster.spec` —
    the serve layer must not import the cluster layer (the cluster is
    built on top of it), and these few lines are the whole shared
    grammar.
    """
    if endpoint.startswith("unix:"):
        return "unix", (endpoint[len("unix:"):],)
    if endpoint.startswith("tcp:"):
        host, sep, port = endpoint[len("tcp:"):].rpartition(":")
        if not sep or not port.isdigit():
            raise ModelError(f"malformed tcp endpoint {endpoint!r}")
        return "tcp", (host, int(port))
    return "unix", (endpoint,)


class DirectLeaseClient:
    """Two-plane cluster client: control via the router, data direct.

    The routed data path pays a relay per mutation; this client removes
    it.  At open it performs the *routing handshake* — a ``route`` call
    on the control connection returning the resource→worker map (derived
    from the cluster spec's shard tiling) plus each worker's endpoint —
    and then sends every ``acquire``/``renew``/``release`` straight to
    the owning worker over a lazily-dialed per-worker link.  The router
    stays in the loop only as the control plane: ticks, stats/report/
    trace/drain barriers, and the handshake itself.

    Staleness is epoch-based.  Worker endpoints are stable across
    supervised respawns (same socket file / same port), so the hazard
    after a ``kill -9`` is a *new process* behind the old address; the
    route table's ``epoch`` (total respawns fleet-wide) moves exactly
    then.  A mutation that hits a dead link re-handshakes — repeatedly,
    within ``recover_for``, until the route table shows the owning
    worker ``up`` again — redials, and resends the op *marked*
    ``retry=True``, so a WAL'd worker's applied-identity dedup answers
    an already-applied op from its log instead of applying it twice:
    exactly-once, end to end, without the router buffering anything.
    Closed-loop tenants have at most one op in flight, so the resend
    can never reorder a tenant's stream.

    ``heartbeat_every`` (seconds), when set, starts a background task
    that periodically repeats the ``route`` call carrying the cached
    epoch — a liveness beat for the router's tracker and an early
    staleness probe for the client (a ``stale-route`` answer triggers
    re-handshake before the data path ever notices).  Tests drive the
    same probe deterministically through :meth:`check_route`.
    """

    def __init__(
        self,
        control: AsyncLeaseClient,
        codec: str | None = None,
        retry_for: float = 5.0,
        recover_for: float = 60.0,
        heartbeat_every: float | None = None,
        trace: TraceSink | None = None,
    ):
        self._control = control
        self._codec = codec
        self._retry_for = retry_for
        self._recover_for = recover_for
        self._trace = trace
        self._route: dict | None = None
        self._los: list[int] = []
        self._links: dict[int, AsyncLeaseClient] = {}
        self._dial_locks: dict[int, asyncio.Lock] = {}
        self._handshake_lock = asyncio.Lock()
        #: Route handshakes performed (1 = the opening one).
        self.handshakes = 0
        #: Mutations resent (marked ``retry``) after a dead data link.
        self.retried_ops = 0
        self._heartbeat_task: asyncio.Task | None = None
        if heartbeat_every is not None:
            self._heartbeat_task = asyncio.create_task(
                self._heartbeat_loop(heartbeat_every)
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    async def open_unix(
        cls, path: str, retry_for: float = 5.0, codec: str | None = None,
        recover_for: float = 60.0, heartbeat_every: float | None = None,
        trace: TraceSink | None = None,
    ) -> "DirectLeaseClient":
        control = await AsyncLeaseClient.open_unix(
            path, retry_for=retry_for, codec=codec, trace=trace
        )
        client = cls(
            control, codec=codec, retry_for=retry_for,
            recover_for=recover_for, heartbeat_every=heartbeat_every,
            trace=trace,
        )
        await client.handshake()
        return client

    @classmethod
    async def open_tcp(
        cls, host: str, port: int, retry_for: float = 5.0,
        codec: str | None = None, recover_for: float = 60.0,
        heartbeat_every: float | None = None,
        trace: TraceSink | None = None,
    ) -> "DirectLeaseClient":
        control = await AsyncLeaseClient.open_tcp(
            host, port, retry_for=retry_for, codec=codec, trace=trace
        )
        client = cls(
            control, codec=codec, retry_for=retry_for,
            recover_for=recover_for, heartbeat_every=heartbeat_every,
            trace=trace,
        )
        await client.handshake()
        return client

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int | None:
        """The cached routing epoch; ``None`` before the handshake."""
        return None if self._route is None else self._route["epoch"]

    @property
    def route(self) -> dict | None:
        """The cached route table, verbatim from the last handshake."""
        return self._route

    def _install(self, table: dict) -> None:
        workers = sorted(table["workers"], key=lambda row: row["index"])
        old = self._route
        self._route = dict(table, workers=workers)
        self._los = [row["range"][0] for row in workers]
        if old is None:
            return
        # Endpoints are stable, processes are not: a worker whose
        # per-slot epoch moved is a *different process* behind the same
        # address, and the cached link points at its corpse.
        by_index = {row["index"]: row for row in old["workers"]}
        for row in workers:
            stale = by_index.get(row["index"])
            if stale is not None and stale.get("epoch") != row.get("epoch"):
                self._drop_link(row["index"])

    def _drop_link(self, index: int) -> None:
        link = self._links.pop(index, None)
        if link is not None:
            asyncio.ensure_future(link.close())

    async def handshake(self) -> dict:
        """(Re)fetch the route table from the router and install it."""
        async with self._handshake_lock:
            table = await self._control.call("route")
            self._install(table)
            self.handshakes += 1
            return self._route

    async def check_route(self) -> bool:
        """One heartbeat: probe the cached epoch, re-handshake if stale.

        Returns ``True`` when the probe found the table stale (and the
        re-handshake installed a fresh one) — the deterministic form of
        what the background heartbeat does on a timer.
        """
        if self._route is None:
            await self.handshake()
            return True
        try:
            await self._control.call("route", epoch=self._route["epoch"])
            return False
        except ServeError as exc:
            if exc.kind != "stale-route":
                raise
            await self.handshake()
            return True

    async def _heartbeat_loop(self, every: float) -> None:
        while True:
            await asyncio.sleep(every)
            try:
                await self.check_route()
            except (ConnectionError, OSError, ServeError):
                # The control link itself may be mid-restart; the next
                # beat (or the data path's own recovery) retries.
                pass

    def worker_of(self, resource: int) -> int:
        """The worker index owning ``resource`` per the cached table."""
        if self._route is None:
            raise ModelError("route handshake has not completed")
        if not 0 <= resource < self._route["num_resources"]:
            raise ModelError(
                f"resource {resource} outside "
                f"[0, {self._route['num_resources']})"
            )
        return bisect.bisect_right(self._los, resource) - 1

    async def _link(self, index: int) -> AsyncLeaseClient:
        link = self._links.get(index)
        if link is not None:
            return link
        lock = self._dial_locks.setdefault(index, asyncio.Lock())
        async with lock:
            link = self._links.get(index)
            if link is None:
                link = await self._dial(
                    self._route["workers"][index]["endpoint"]
                )
                self._links[index] = link
            return link

    async def _dial(self, endpoint: str) -> AsyncLeaseClient:
        kind, address = parse_worker_endpoint(endpoint)
        if kind == "unix":
            return await AsyncLeaseClient.open_unix(
                address[0], retry_for=self._retry_for, codec=self._codec,
                trace=self._trace,
            )
        return await AsyncLeaseClient.open_tcp(
            address[0], address[1], retry_for=self._retry_for,
            codec=self._codec, trace=self._trace,
        )

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    async def _mutate(self, op: str, tenant: str, resource: int, when: int):
        index = self.worker_of(resource)
        try:
            link = await self._link(index)
            return await link.call(
                op, tenant=tenant, resource=resource, time=when
            )
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            return await self._recover_and_resend(
                op, index, tenant=tenant, resource=resource, time=when
            )

    async def _recover_and_resend(self, op: str, index: int, **fields):
        """Ride through a worker death: re-handshake, redial, resend once.

        The original send raced the worker's death, so whether the op
        was applied is unknowable from here — the resend carries the
        ``retry`` marker and the recovered worker's applied-identity
        dedup makes the pair exactly-once.  Keeps re-handshaking (the
        router's supervision is respawning the worker meanwhile) until
        the table shows the owner ``up`` and a fresh dial succeeds, for
        at most ``recover_for`` seconds.
        """
        self._drop_link(index)
        deadline = time.monotonic() + self._recover_for
        delay = CONNECT_BACKOFF_BASE
        while True:
            try:
                table = await self.handshake()
                row = table["workers"][index]
                if row.get("state", "up") == "up":
                    link = await self._link(index)
                    result = await link.call(op, retry=True, **fields)
                    self.retried_ops += 1
                    return result
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                self._drop_link(index)
            now = time.monotonic()
            if now >= deadline:
                raise LeaseRetryError(
                    f"{op!r} not recoverable: worker {index} did not come "
                    f"back within {self._recover_for}s",
                    attempts=1,
                )
            sleep, delay = _next_backoff(delay)
            await asyncio.sleep(min(sleep, deadline - now))

    # ------------------------------------------------------------------
    # Op surface (mutations direct, control via the router)
    # ------------------------------------------------------------------
    async def acquire(self, tenant: str, resource: int, time: int) -> dict:
        return await self._mutate("acquire", tenant, resource, time)

    async def renew(self, tenant: str, resource: int, time: int) -> dict:
        return await self._mutate("renew", tenant, resource, time)

    async def release(self, tenant: str, resource: int, time: int) -> dict:
        return await self._mutate("release", tenant, resource, time)

    async def tick(self, time: int) -> dict:
        return await self._control.tick(time)

    async def stats(self) -> dict:
        return await self._control.stats()

    async def report(self) -> dict:
        return await self._control.report()

    @property
    def connect_attempts(self) -> int:
        """Dial attempts across the control and all data connections."""
        return self._control.connect_attempts + sum(
            link.connect_attempts for link in self._links.values()
        )

    async def close(self) -> None:
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except (asyncio.CancelledError, Exception):
                pass
        for index in list(self._links):
            link = self._links.pop(index)
            await link.close()
        await self._control.close()


class LeaseClient:
    """Blocking protocol client with bounded-retry connect and reconnect.

    Args:
        path: unix-socket path (exclusive with ``host``/``port``).
        host, port: TCP address (exclusive with ``path``).
        connect_timeout: seconds to keep retrying the initial dial (and
            any redial) while the server is not accepting yet.
        reconnect: when a call hits a dead connection, redial within
            ``connect_timeout`` and resend the request — the client
            survives a server restart, losing only the in-flight call's
            at-most-once guarantee (mutations here are idempotent
            per-day, so a resend is safe).
        retry_budget: how many redial-and-resend attempts one logical
            call may spend after its first try (``reconnect=False``
            forces 0).  Exhausting the budget raises
            :class:`~repro.serve.protocol.LeaseRetryError`.
        deadline: default per-op response deadline in seconds; ``None``
            waits forever.  An expired deadline raises
            :class:`~repro.serve.protocol.LeaseTimeoutError` and
            abandons the connection (a late response would desync the
            stream), so the next call redials.  Deadlines are never
            retried — the server may well have applied the op.
        codec: wire codec to negotiate on every (re)connect; ``"bin"``
            upgrades only when the server confirms it.
        metrics: registry for the client-side failure counters
            (``client_retries_total``, ``client_timeouts_total``,
            ``client_retry_exhausted_total`` — the client-side mirror of
            the router's link counters); ``None`` counts nothing.
    """

    def __init__(
        self,
        path: str | None = None,
        host: str | None = None,
        port: int | None = None,
        connect_timeout: float = 5.0,
        reconnect: bool = True,
        retry_budget: int = 1,
        deadline: float | None = None,
        codec: str | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if (path is None) == (host is None or port is None):
            raise ModelError(
                "LeaseClient needs either a unix path or host+port"
            )
        if retry_budget < 0:
            raise ModelError("retry_budget must be >= 0")
        registry = metrics if metrics is not None else MetricsRegistry(
            enabled=False
        )
        self._retries_counter = registry.counter(
            "client_retries_total",
            help="Redial-and-resend attempts after a dead connection.",
        )
        self._timeouts_counter = registry.counter(
            "client_timeouts_total",
            help="Calls abandoned because their deadline expired.",
        )
        self._exhausted_counter = registry.counter(
            "client_retry_exhausted_total",
            help="Logical calls that spent their whole retry budget.",
        )
        self._connects_counter = registry.counter(
            "client_connect_attempts_total",
            help="Socket dial attempts, including backoff retries.",
        )
        #: Running total of dial attempts this client has spent.
        self.connect_attempts = 0
        self._path = path
        self._addr = (host, port) if host is not None else None
        self._connect_timeout = connect_timeout
        self._reconnect = reconnect
        self._retry_budget = retry_budget if reconnect else 0
        self._deadline = deadline
        self._codec_wanted = codec
        self._codec = CODEC_JSON
        self._ids = itertools.count(1)
        self._sock: socket.socket | None = None

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def connect(self) -> "LeaseClient":
        """Dial the server, retrying refusals until ``connect_timeout``.

        Refusals back off exponentially with jitter (the shared
        :data:`CONNECT_BACKOFF_BASE` / :data:`CONNECT_BACKOFF_CAP`
        shape) so a fleet of reconnecting clients does not hammer a
        server that is still restarting in lockstep.
        """
        self.close()
        deadline = time.monotonic() + self._connect_timeout
        delay = CONNECT_BACKOFF_BASE
        while True:
            self.connect_attempts += 1
            self._connects_counter.inc()
            try:
                if self._path is not None:
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.connect(self._path)
                else:
                    sock = socket.create_connection(self._addr)
                self._sock = sock
                break
            except (ConnectionRefusedError, FileNotFoundError, OSError):
                now = time.monotonic()
                if now >= deadline:
                    raise
                sleep, delay = _next_backoff(delay)
                time.sleep(min(sleep, deadline - now))
        if self._codec_wanted is not None:
            self._negotiate()
        return self

    def _negotiate(self) -> None:
        # Codec state is per-connection, so every (re)dial renegotiates;
        # the request itself travels as JSON, which any server accepts.
        self._codec = CODEC_JSON
        request_id = next(self._ids)
        send_frame(
            self._sock, request("hello", request_id, codec=self._codec_wanted)
        )
        while True:
            payload = recv_frame(self._sock)
            if payload is None:
                raise ConnectionError("server closed during codec negotiation")
            if payload.get("id") == request_id:
                result = parse_response(payload)
                if result.get("codec") == CODEC_BIN == self._codec_wanted:
                    self._codec = CODEC_BIN
                return

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "LeaseClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def call(
        self, op: str, deadline: float | None = None, **fields: Any
    ) -> dict:
        """One blocking round trip within the call's retry budget.

        A dead connection is transparently redialed and the request
        resent until ``retry_budget`` attempts are spent; exhaustion
        raises :class:`LeaseRetryError` (with ``reconnect=False`` the
        raw transport error propagates instead, as before).  ``deadline``
        overrides the client default for this op only.
        """
        attempts = 0
        while True:
            attempts += 1
            try:
                return self._call_once(op, fields, deadline)
            except (ConnectionError, BrokenPipeError, ProtocolError, OSError) as exc:
                if self._retry_budget == 0:
                    raise
                if attempts > self._retry_budget:
                    self._exhausted_counter.inc()
                    raise LeaseRetryError(
                        f"{op!r} failed after {attempts} attempts "
                        f"(retry budget {self._retry_budget}): {exc}",
                        attempts=attempts,
                    ) from exc
                self._retries_counter.inc()
                try:
                    self.connect()
                except OSError as redial_exc:
                    # The redial window itself ran dry: the budget is
                    # spent on a server that never came back.
                    self._exhausted_counter.inc()
                    raise LeaseRetryError(
                        f"{op!r} failed after {attempts} attempt(s); "
                        f"redial gave up: {redial_exc}",
                        attempts=attempts,
                    ) from redial_exc

    def _call_once(
        self, op: str, fields: dict, deadline: float | None
    ) -> dict:
        if self._sock is None:
            self.connect()
        timeout = deadline if deadline is not None else self._deadline
        expires = None if timeout is None else time.monotonic() + timeout
        request_id = next(self._ids)
        try:
            self._sock.settimeout(timeout)
            send_frame(self._sock, request(op, request_id, **fields), self._codec)
            while True:
                if expires is not None:
                    remaining = expires - time.monotonic()
                    if remaining <= 0:
                        raise socket.timeout()
                    self._sock.settimeout(remaining)
                payload = recv_frame(self._sock)
                if payload is None:
                    raise ConnectionError("server closed the connection")
                if payload.get("id") == request_id:
                    return parse_response(payload)
        except socket.timeout as exc:
            # The response may still arrive later and desync the stream:
            # abandon the connection so the next call starts clean.  A
            # timed-out op is never resent — the server may have applied it.
            self.close()
            self._timeouts_counter.inc()
            raise LeaseTimeoutError(
                f"no response to {op!r} within {timeout}s deadline"
            ) from exc
        finally:
            if self._sock is not None and timeout is not None:
                self._sock.settimeout(None)

    def pipeline(
        self, requests: Sequence[tuple[str, dict]],
        deadline: float | None = None,
    ) -> list[dict | ServeError]:
        """Send every request as one batched write, then read responses.

        All request frames are encoded up front and hit the socket in a
        single ``sendall`` — the sync side's op-coalescing hot path.
        Returns one entry per request, in request order: the result dict,
        or the :class:`ServeError` that request drew.  Unlike :meth:`call`
        this never resends — a batch that dies mid-flight raises — and
        ``deadline`` (seconds for the *whole batch*) raises
        :class:`LeaseTimeoutError` and abandons the connection.
        """
        if self._sock is None:
            self.connect()
        timeout = deadline if deadline is not None else self._deadline
        expires = None if timeout is None else time.monotonic() + timeout
        ids = []
        frames = []
        for op, fields in requests:
            request_id = next(self._ids)
            ids.append(request_id)
            frames.append(
                encode_frame(request(op, request_id, **fields), self._codec)
            )
        by_id: dict[int, dict | ServeError] = {}
        wanted = set(ids)
        try:
            self._sock.settimeout(timeout)
            self._sock.sendall(b"".join(frames))
            while wanted:
                if expires is not None:
                    remaining = expires - time.monotonic()
                    if remaining <= 0:
                        raise socket.timeout()
                    self._sock.settimeout(remaining)
                payload = recv_frame(self._sock)
                if payload is None:
                    raise ConnectionError("server closed mid-pipeline")
                request_id = payload.get("id")
                if request_id not in wanted:
                    continue
                wanted.discard(request_id)
                try:
                    by_id[request_id] = parse_response(payload)
                except ServeError as exc:
                    by_id[request_id] = exc
        except socket.timeout as exc:
            self.close()
            self._timeouts_counter.inc()
            raise LeaseTimeoutError(
                f"pipeline of {len(ids)} requests incomplete after "
                f"{timeout}s deadline ({len(wanted)} unanswered)"
            ) from exc
        finally:
            if self._sock is not None and timeout is not None:
                self._sock.settimeout(None)
        return [by_id[request_id] for request_id in ids]

    @property
    def codec(self) -> str:
        """The codec this client currently emits (receives are always dual)."""
        return self._codec

    # Convenience wrappers mirroring the async client.
    def hello(self, deadline: float | None = None) -> dict:
        return self.call("hello", deadline=deadline)

    def acquire(
        self, tenant: str, resource: int, time: int,
        deadline: float | None = None,
    ) -> dict:
        return self.call(
            "acquire", deadline=deadline,
            tenant=tenant, resource=resource, time=time,
        )

    def renew(
        self, tenant: str, resource: int, time: int,
        deadline: float | None = None,
    ) -> dict:
        return self.call(
            "renew", deadline=deadline,
            tenant=tenant, resource=resource, time=time,
        )

    def release(
        self, tenant: str, resource: int, time: int,
        deadline: float | None = None,
    ) -> dict:
        return self.call(
            "release", deadline=deadline,
            tenant=tenant, resource=resource, time=time,
        )

    def tick(self, time: int, deadline: float | None = None) -> dict:
        return self.call("tick", deadline=deadline, time=time)

    def stats(self) -> dict:
        return self.call("stats")

    def report(self) -> dict:
        return self.call("report")

    def trace(self) -> dict:
        return self.call("trace")

    def drain(self) -> dict:
        return self.call("drain")

    def shutdown(self) -> dict:
        return self.call("shutdown")
