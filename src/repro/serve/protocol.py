"""Length-prefixed wire protocol for the lease-serving front end.

One *frame* is a 4-byte big-endian header followed by a payload body.
The header's low 31 bits carry the body length; the high bit selects the
*codec* the body was encoded with — clear for UTF-8 JSON (the PR 3
format, unchanged on the wire), set for the compact binary codec below.
Every decoder accepts both codecs on the same stream, frame by frame, so
codec choice is purely a question of what a sender *emits*: peers
negotiate it at ``hello`` (``codec="bin"`` requested and echoed), and a
peer that never negotiates keeps speaking JSON against any server.

Bodies encode a single object.  Requests are envelopes ``{"id": <int>,
"op": <str>, ...fields}``; responses echo the id as either an *ok frame*
``{"id": n, "ok": true, "result": {...}}`` or an *error frame* ``{"id":
n, "ok": false, "error": {"kind": ..., "message": ...}}``.  Ids are
chosen by the client and only need to be unique among its in-flight
requests — they are what make pipelining possible: a client may write
many request frames before reading any response and match responses back
by id, in whatever order the server finishes them.

The binary codec is shape-special-cased, not a general serializer: the
hot mutation envelopes (acquire/renew/release/tick requests, grant and
applied-time ok responses) pack into fixed ``struct`` layouts — one pack
call instead of JSON string assembly — and *everything else* (control
ops, error frames, any payload outside the fast shapes or outside u64
ranges) rides as JSON bytes inside a binary frame.  Decoding a binary
body therefore reproduces exactly the dict the JSON codec would have
carried, which is the property the codec tests pin down.

The op surface mirrors the broker service plus serving control:

========== ============================================================
op         meaning
========== ============================================================
hello      server identity, protocol version, shard/schedule config
acquire    grant ``tenant`` the ``resource`` from day ``time``
renew      extend the tenant's running grant through day ``time``
release    close the tenant's grant (no-op if none is live)
tick       advance every shard's clock (expire grants), serve nothing
stats      per-shard broker counters plus session registry snapshot
report     per-shard aggregate run payloads (cost, leases, stats)
trace      per-shard applied event logs (requires server recording)
metrics    Prometheus text exposition of the whole process (ops plane)
leases     live lease book: every active grant, folded across shards
spans      live trace spans from the process's sink (optionally one
           trace id); the router federates it across the fleet
drain      stop admitting new acquires; renews/releases still served
undrain    resume admitting acquires after a drain
shutdown   acknowledge, then stop the server
========== ============================================================

Mutation envelopes may carry an optional **trace context** — a
``"trace"`` field of the form ``"<trace-id>-<span-id>"``, two
16-hex-digit u64s (W3C traceparent, shrunk to the two words this
system needs).  The JSON codec carries it as a plain extra field; the
binary codec reserves the high bit of the opcode byte and appends the
two words as a fixed trailer.  Peers advertise trace support at
``hello`` (``"trace": true`` in the result), and a client only attaches
the field after seeing the advertisement, so old peers interop
unchanged.

Error *kinds* partition who misbehaved: ``protocol`` (malformed frame or
request), ``model`` (the broker rejected the operation), ``draining``
(acquire after drain), ``backpressure`` (tenant exceeded its in-flight
window), ``unavailable`` (trace requested without recording).

Everything here is transport-agnostic pure bytes plus thin asyncio and
blocking-socket adapters, so the async server, the async client, and the
sync client all speak through one encoder.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from ..errors import ModelError

#: Shared encoder for frame bodies.  ``json.dumps`` with non-default
#: ``separators`` builds a fresh ``JSONEncoder`` per call; this is the
#: per-frame hot path, so cache one.
_JSON_ENCODE = json.JSONEncoder(separators=(",", ":")).encode

PROTOCOL_VERSION = 2

#: Frame header: 4-byte big-endian word — low 31 bits payload size, high
#: bit set when the body uses the binary codec instead of JSON.
HEADER = struct.Struct(">I")

#: High header bit: the body is binary-codec, not JSON.
BIN_FLAG = 0x8000_0000
_LENGTH_MASK = BIN_FLAG - 1

#: Hard ceiling on one frame's payload — a report frame carrying every
#: lease of a smoke-sized run fits with orders of magnitude to spare; a
#: corrupt or hostile length prefix does not get to allocate gigabytes.
#: Must stay below :data:`BIN_FLAG` so the codec bit is always free.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Wire codecs a peer may emit; every receiver decodes both.
CODEC_JSON = "json"
CODEC_BIN = "bin"
CODECS: tuple[str, ...] = (CODEC_JSON, CODEC_BIN)


def negotiate_codec(requested: object) -> str:
    """The codec a ``hello`` negotiation settles on.

    Only a recognised explicit request for the binary codec upgrades the
    connection; anything else — absent, unknown, or malformed — falls
    back to JSON, so negotiation can never wedge a connection.
    """
    return CODEC_BIN if requested == CODEC_BIN else CODEC_JSON

OPS: tuple[str, ...] = (
    "hello",
    "route",
    "acquire",
    "renew",
    "release",
    "tick",
    "stats",
    "report",
    "trace",
    "metrics",
    "leases",
    "spans",
    "drain",
    "undrain",
    "shutdown",
)

#: Ops that mutate broker state and flow through a shard dispatch queue.
MUTATION_OPS = frozenset({"acquire", "renew", "release", "tick"})

ERROR_KINDS: tuple[str, ...] = (
    "protocol",
    "model",
    "draining",
    "backpressure",
    "unavailable",
    "stale-route",
)


class ProtocolError(ModelError):
    """A frame or envelope violated the wire format."""


# ----------------------------------------------------------------------
# Trace context: "<trace-id>-<span-id>", two 16-hex-digit u64s
# ----------------------------------------------------------------------
_TRACE_LEN = 33  # 16 hex + "-" + 16 hex


def format_trace(trace_id: int, span_id: int) -> str:
    """Render a trace context field from its two u64 words."""
    return f"{trace_id:016x}-{span_id:016x}"


def parse_trace(value: object) -> tuple[int, int] | None:
    """``(trace_id, span_id)`` from a trace field; ``None`` if malformed.

    Malformed contexts are dropped, never fatal: tracing is observation,
    and a bad field must not take down the op that carried it.
    """
    if type(value) is not str or len(value) != _TRACE_LEN or value[16] != "-":
        return None
    try:
        trace_id = int(value[:16], 16)
        span_id = int(value[17:], 16)
    except ValueError:
        return None
    if trace_id < 0 or span_id < 0:
        return None
    return trace_id, span_id


class LeaseTimeoutError(ModelError):
    """A client-side per-op deadline expired before the response arrived.

    Raised by the sync :class:`~repro.serve.client.LeaseClient` when a
    call's ``deadline`` elapses.  The connection is abandoned (the late
    response would desynchronise the stream), so the next call redials.
    """


class LeaseRetryError(ModelError):
    """A client exhausted its retry budget for one logical call.

    Wraps the final transport failure after every transparent
    redial-and-resend attempt the budget allowed; ``attempts`` counts
    how many times the request hit the wire.
    """

    def __init__(self, message: str, attempts: int):
        super().__init__(message)
        self.attempts = attempts


class ServeError(ModelError):
    """A serve-layer request failed; ``kind`` names the error class.

    Raised server-side to signal an error frame and re-raised client-side
    when an error frame comes back, so both ends of the wire see the same
    exception type with the same ``kind``/``message`` pair.
    """

    def __init__(self, kind: str, message: str):
        super().__init__(f"[{kind}] {message}")
        self.kind = kind
        self.message = message


# ----------------------------------------------------------------------
# Binary body codec: fixed layouts for hot shapes, JSON bytes otherwise
# ----------------------------------------------------------------------
_BIN_KIND_JSON = 0      # JSON bytes of the whole payload
_BIN_KIND_MUTATION = 1  # mutation request envelope
_BIN_KIND_GRANT = 2     # ok response: {"grant": ..., "applied_time": ...}
_BIN_KIND_APPLIED = 3   # ok response: {"applied_time": ...}

#: kind, opcode, id, time, resource, tenant byte length (+ tenant bytes).
#: The opcode byte reserves its high bit (:data:`_TRACE_FLAG`): when
#: set, a :data:`_TRACE_STRUCT` trailer follows the tenant bytes.
_MUTATION_STRUCT = struct.Struct(">BBQQQH")
#: Trace-context trailer: trace id, span id (two u64 words).
_TRACE_STRUCT = struct.Struct(">QQ")
#: High opcode bit: the mutation body ends in a trace-context trailer.
_TRACE_FLAG = 0x80
#: kind, flags (bit0: grant present), id, applied_time.
_GRANT_HEAD_STRUCT = struct.Struct(">BBQQ")
#: grant_id, acquired_at, expires_at, released_at (-1 = None), resource,
#: tenant byte length (+ tenant bytes).
_GRANT_BODY_STRUCT = struct.Struct(">QQQqQH")
#: kind, id, applied_time.
_APPLIED_STRUCT = struct.Struct(">BQQ")

_MUTATION_OPCODES = {"acquire": 0, "renew": 1, "release": 2, "tick": 3}
_MUTATION_OP_NAMES = {code: op for op, code in _MUTATION_OPCODES.items()}

_U64_MAX = (1 << 64) - 1
_I64_MAX = (1 << 63) - 1

_MUTATION_KEYS = frozenset({"id", "op", "tenant", "resource", "time"})
_TICK_KEYS = frozenset({"id", "op", "time"})
_RESPONSE_KEYS = frozenset({"id", "ok", "result"})
_GRANT_RESULT_KEYS = frozenset({"grant", "applied_time"})
_GRANT_KEYS = frozenset(
    {"grant_id", "tenant", "resource", "acquired_at", "expires_at",
     "released_at"}
)


def _u64(value: object) -> bool:
    return type(value) is int and 0 <= value <= _U64_MAX


def _tenant_bytes(value: object) -> bytes | None:
    if type(value) is not str:
        return None
    try:
        raw = value.encode("utf-8")
    except UnicodeEncodeError:
        return None  # lone surrogates survive JSON escaping, not UTF-8
    return raw if len(raw) <= 0xFFFF else None


def _pack_mutation(payload: dict) -> bytes | None:
    op = payload.get("op")
    opcode = _MUTATION_OPCODES.get(op) if type(op) is str else None
    if opcode is None or not _u64(payload.get("id")):
        return None
    if not _u64(payload.get("time")):
        return None
    keys = payload.keys()
    trailer = b""
    if "trace" in keys:
        context = parse_trace(payload["trace"])
        if context is None or payload["trace"] != format_trace(*context):
            return None  # non-canonical context rides as JSON bytes
        trailer = _TRACE_STRUCT.pack(*context)
        opcode |= _TRACE_FLAG
        keys = keys - {"trace"}
    if op == "tick":
        if keys != _TICK_KEYS:
            return None
        return _MUTATION_STRUCT.pack(
            _BIN_KIND_MUTATION, opcode, payload["id"], payload["time"], 0, 0
        ) + trailer
    if keys != _MUTATION_KEYS or not _u64(payload.get("resource")):
        return None
    tenant = _tenant_bytes(payload.get("tenant"))
    if tenant is None:
        return None
    return _MUTATION_STRUCT.pack(
        _BIN_KIND_MUTATION, opcode, payload["id"], payload["time"],
        payload["resource"], len(tenant),
    ) + tenant + trailer


def _pack_grant(result: dict, request_id: int) -> bytes | None:
    grant = result.get("grant")
    if grant is None:
        return _GRANT_HEAD_STRUCT.pack(
            _BIN_KIND_GRANT, 0, request_id, result["applied_time"]
        )
    if not isinstance(grant, dict) or grant.keys() != _GRANT_KEYS:
        return None
    released = grant["released_at"]
    if released is None:
        released = -1
    elif not (type(released) is int and 0 <= released <= _I64_MAX):
        return None
    if not (
        _u64(grant["grant_id"])
        and _u64(grant["acquired_at"])
        and _u64(grant["expires_at"])
        and _u64(grant["resource"])
    ):
        return None
    tenant = _tenant_bytes(grant["tenant"])
    if tenant is None:
        return None
    return (
        _GRANT_HEAD_STRUCT.pack(
            _BIN_KIND_GRANT, 1, request_id, result["applied_time"]
        )
        + _GRANT_BODY_STRUCT.pack(
            grant["grant_id"], grant["acquired_at"], grant["expires_at"],
            released, grant["resource"], len(tenant),
        )
        + tenant
    )


def _pack_response(payload: dict) -> bytes | None:
    if payload.keys() != _RESPONSE_KEYS or payload.get("ok") is not True:
        return None
    if not _u64(payload.get("id")):
        return None
    result = payload.get("result")
    if not isinstance(result, dict) or not _u64(result.get("applied_time")):
        return None
    if result.keys() == {"applied_time"}:
        return _APPLIED_STRUCT.pack(
            _BIN_KIND_APPLIED, payload["id"], result["applied_time"]
        )
    if result.keys() == _GRANT_RESULT_KEYS:
        return _pack_grant(result, payload["id"])
    return None


def encode_body_bin(payload: dict) -> bytes:
    """Encode one payload with the binary codec.

    Hot shapes pack into fixed layouts; everything else becomes JSON
    bytes behind a kind tag, so *any* JSON-encodable payload has a
    binary encoding and ``decode_body_bin`` always reproduces exactly
    what the JSON codec would have carried.
    """
    packed = _pack_mutation(payload) or _pack_response(payload)
    if packed is not None:
        return packed
    body = _JSON_ENCODE(payload).encode("utf-8")
    return bytes([_BIN_KIND_JSON]) + body


def _exact_tail(body: bytes, offset: int, length: int) -> bytes:
    """The body's trailing string field, which must fill it exactly.

    A truncated or padded frame is corruption and must raise — slicing
    alone would silently shorten the field (e.g. apply a request under
    the wrong tenant name) instead of rejecting the frame.
    """
    if len(body) != offset + length:
        raise ProtocolError(
            f"binary frame length mismatch: {len(body)} bytes, "
            f"expected {offset + length}"
        )
    return body[offset:offset + length]


def decode_body_bin(body: bytes) -> dict:
    """Decode one binary-codec frame body back to its payload dict."""
    if not body:
        raise ProtocolError("empty binary frame body")
    kind = body[0]
    try:
        if kind == _BIN_KIND_JSON:
            return decode_body(body[1:])
        if kind == _BIN_KIND_MUTATION:
            (_, opcode, request_id, when, resource, tenant_len) = (
                _MUTATION_STRUCT.unpack_from(body)
            )
            trace = None
            if opcode & _TRACE_FLAG:
                # The trailer sits at the very end; strip it first so the
                # tenant field below still fills the body exactly.
                split = len(body) - _TRACE_STRUCT.size
                if split < _MUTATION_STRUCT.size:
                    raise ProtocolError("binary frame too short for trace")
                trace = format_trace(*_TRACE_STRUCT.unpack_from(body, split))
                body = body[:split]
                opcode &= ~_TRACE_FLAG
            op = _MUTATION_OP_NAMES[opcode]
            if op == "tick":
                payload = {"id": request_id, "op": op, "time": when}
            else:
                tenant = _exact_tail(
                    body, _MUTATION_STRUCT.size, tenant_len
                ).decode("utf-8")
                payload = {
                    "id": request_id, "op": op, "tenant": tenant,
                    "resource": resource, "time": when,
                }
            if trace is not None:
                payload["trace"] = trace
            return payload
        if kind == _BIN_KIND_GRANT:
            _, flags, request_id, applied = _GRANT_HEAD_STRUCT.unpack_from(body)
            if not flags & 1:
                return {
                    "id": request_id, "ok": True,
                    "result": {"grant": None, "applied_time": applied},
                }
            offset = _GRANT_HEAD_STRUCT.size
            (grant_id, acquired, expires, released, resource, tenant_len) = (
                _GRANT_BODY_STRUCT.unpack_from(body, offset)
            )
            offset += _GRANT_BODY_STRUCT.size
            tenant = _exact_tail(body, offset, tenant_len).decode("utf-8")
            return {
                "id": request_id,
                "ok": True,
                "result": {
                    "grant": {
                        "grant_id": grant_id,
                        "tenant": tenant,
                        "resource": resource,
                        "acquired_at": acquired,
                        "expires_at": expires,
                        "released_at": None if released < 0 else released,
                    },
                    "applied_time": applied,
                },
            }
        if kind == _BIN_KIND_APPLIED:
            _, request_id, applied = _APPLIED_STRUCT.unpack(body)
            return {
                "id": request_id, "ok": True,
                "result": {"applied_time": applied},
            }
    except (struct.error, KeyError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable binary frame: {exc}") from exc
    raise ProtocolError(f"unknown binary frame kind {kind}")


# ----------------------------------------------------------------------
# Pure frame encoding
# ----------------------------------------------------------------------
def encode_frame(payload: dict, codec: str = CODEC_JSON) -> bytes:
    """One wire frame: header plus body in the requested codec."""
    if codec == CODEC_BIN:
        body = encode_body_bin(payload)
        flag = BIN_FLAG
    else:
        body = _JSON_ENCODE(payload).encode("utf-8")
        flag = 0
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return HEADER.pack(len(body) | flag) + body


def decode_body(body: bytes) -> dict:
    """Decode one JSON frame body; the payload must be a JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _split_header(word: int) -> tuple[int, bool]:
    """Header word -> (payload length, binary-codec flag), bounds-checked."""
    length = word & _LENGTH_MASK
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )
    return length, bool(word & BIN_FLAG)


def _decode(body: bytes, binary: bool) -> dict:
    return decode_body_bin(body) if binary else decode_body(body)


class FrameDecoder:
    """Incremental frame reassembly for byte streams of any chunking.

    Feed it whatever the transport produced; it returns every complete
    frame payload and buffers the remainder.  The sync client reads
    sockets through one of these, and the tests use it to prove frames
    survive arbitrary fragmentation.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        self._buffer.extend(data)
        frames: list[dict] = []
        while True:
            if len(self._buffer) < HEADER.size:
                return frames
            (word,) = HEADER.unpack_from(self._buffer)
            length, binary = _split_header(word)
            end = HEADER.size + length
            if len(self._buffer) < end:
                return frames
            body = bytes(self._buffer[HEADER.size:end])
            del self._buffer[:end]
            frames.append(_decode(body, binary))

    @property
    def pending_bytes(self) -> int:
        """Buffered bytes of the not-yet-complete next frame."""
        return len(self._buffer)


# ----------------------------------------------------------------------
# asyncio stream adapters
# ----------------------------------------------------------------------
async def read_frame(reader, bytes_counter=None) -> dict | None:
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    ``bytes_counter``, when given, receives ``.inc(n)`` with the frame's
    full wire size (header included) — the serve layer's bytes-in
    instrumentation hook, ``None`` (no call at all) when disabled.
    """
    try:
        # IncompleteReadError subclasses EOFError, so a half-frame EOF
        # lands here too and reads as a (slightly rude) disconnect.
        header = await reader.readexactly(HEADER.size)
    except (EOFError, ConnectionError, OSError):
        return None
    (word,) = HEADER.unpack(header)
    length, binary = _split_header(word)
    body = await reader.readexactly(length)
    if bytes_counter is not None:
        bytes_counter.inc(HEADER.size + length)
    return _decode(body, binary)


async def write_frame(
    writer, payload: dict, codec: str = CODEC_JSON, bytes_counter=None
) -> None:
    """Write one frame to an asyncio stream and drain the transport.

    ``bytes_counter`` mirrors :func:`read_frame`'s hook on the way out.
    """
    frame = encode_frame(payload, codec)
    if bytes_counter is not None:
        bytes_counter.inc(len(frame))
    writer.write(frame)
    await writer.drain()


# ----------------------------------------------------------------------
# Blocking-socket adapters (the sync client)
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, payload: dict, codec: str = CODEC_JSON) -> None:
    """Send one frame over a blocking socket."""
    sock.sendall(encode_frame(payload, codec))


def recv_frame(sock: socket.socket) -> dict | None:
    """Receive one frame from a blocking socket; ``None`` on clean EOF."""
    header = _recv_exact(sock, HEADER.size)
    if header is None:
        return None
    (word,) = HEADER.unpack(header)
    length, binary = _split_header(word)
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return _decode(body, binary)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            return None
        chunks.extend(chunk)
    return bytes(chunks)


# ----------------------------------------------------------------------
# Envelope helpers
# ----------------------------------------------------------------------
def request(op: str, request_id: int, **fields: Any) -> dict:
    """A request envelope: id, op, and the op's fields."""
    payload = {"id": request_id, "op": op}
    payload.update(fields)
    return payload


def ok(request_id: Any, result: dict) -> dict:
    """An ok response frame for ``request_id``."""
    return {"id": request_id, "ok": True, "result": result}


def error(request_id: Any, kind: str, message: str) -> dict:
    """An error response frame for ``request_id``."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"kind": kind, "message": message},
    }


def parse_response(payload: dict) -> dict:
    """Extract a response's result, raising :class:`ServeError` on error frames."""
    if payload.get("ok"):
        result = payload.get("result")
        return result if isinstance(result, dict) else {}
    detail = payload.get("error") or {}
    raise ServeError(
        str(detail.get("kind", "protocol")),
        str(detail.get("message", "malformed error frame")),
    )
