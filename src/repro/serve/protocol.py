"""Length-prefixed JSON wire protocol for the lease-serving front end.

One *frame* is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding a single object.  Requests are
envelopes ``{"id": <int>, "op": <str>, ...fields}``; responses echo the
id as either an *ok frame* ``{"id": n, "ok": true, "result": {...}}`` or
an *error frame* ``{"id": n, "ok": false, "error": {"kind": ...,
"message": ...}}``.  Ids are chosen by the client and only need to be
unique among its in-flight requests — they are what make pipelining
possible: a client may write many request frames before reading any
response and match responses back by id, in whatever order the server
finishes them.

The op surface mirrors the broker service plus serving control:

========== ============================================================
op         meaning
========== ============================================================
hello      server identity, protocol version, shard/schedule config
acquire    grant ``tenant`` the ``resource`` from day ``time``
renew      extend the tenant's running grant through day ``time``
release    close the tenant's grant (no-op if none is live)
tick       advance every shard's clock (expire grants), serve nothing
stats      per-shard broker counters plus session registry snapshot
report     per-shard aggregate run payloads (cost, leases, stats)
trace      per-shard applied event logs (requires server recording)
drain      stop admitting new acquires; renews/releases still served
shutdown   acknowledge, then stop the server
========== ============================================================

Error *kinds* partition who misbehaved: ``protocol`` (malformed frame or
request), ``model`` (the broker rejected the operation), ``draining``
(acquire after drain), ``backpressure`` (tenant exceeded its in-flight
window), ``unavailable`` (trace requested without recording).

Everything here is transport-agnostic pure bytes plus thin asyncio and
blocking-socket adapters, so the async server, the async client, and the
sync client all speak through one encoder.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from ..errors import ModelError

PROTOCOL_VERSION = 1

#: Frame-length header: 4-byte big-endian unsigned payload size.
HEADER = struct.Struct(">I")

#: Hard ceiling on one frame's payload — a report frame carrying every
#: lease of a smoke-sized run fits with orders of magnitude to spare; a
#: corrupt or hostile length prefix does not get to allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

OPS: tuple[str, ...] = (
    "hello",
    "acquire",
    "renew",
    "release",
    "tick",
    "stats",
    "report",
    "trace",
    "drain",
    "shutdown",
)

#: Ops that mutate broker state and flow through a shard dispatch queue.
MUTATION_OPS = frozenset({"acquire", "renew", "release", "tick"})

ERROR_KINDS: tuple[str, ...] = (
    "protocol",
    "model",
    "draining",
    "backpressure",
    "unavailable",
)


class ProtocolError(ModelError):
    """A frame or envelope violated the wire format."""


class ServeError(ModelError):
    """A serve-layer request failed; ``kind`` names the error class.

    Raised server-side to signal an error frame and re-raised client-side
    when an error frame comes back, so both ends of the wire see the same
    exception type with the same ``kind``/``message`` pair.
    """

    def __init__(self, kind: str, message: str):
        super().__init__(f"[{kind}] {message}")
        self.kind = kind
        self.message = message


# ----------------------------------------------------------------------
# Pure frame encoding
# ----------------------------------------------------------------------
def encode_frame(payload: dict) -> bytes:
    """One wire frame: length header plus compact UTF-8 JSON body."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Decode one frame body; the payload must be a JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME_BYTES ({MAX_FRAME_BYTES})"
        )


class FrameDecoder:
    """Incremental frame reassembly for byte streams of any chunking.

    Feed it whatever the transport produced; it returns every complete
    frame payload and buffers the remainder.  The sync client reads
    sockets through one of these, and the tests use it to prove frames
    survive arbitrary fragmentation.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        self._buffer.extend(data)
        frames: list[dict] = []
        while True:
            if len(self._buffer) < HEADER.size:
                return frames
            (length,) = HEADER.unpack_from(self._buffer)
            _check_length(length)
            end = HEADER.size + length
            if len(self._buffer) < end:
                return frames
            body = bytes(self._buffer[HEADER.size:end])
            del self._buffer[:end]
            frames.append(decode_body(body))

    @property
    def pending_bytes(self) -> int:
        """Buffered bytes of the not-yet-complete next frame."""
        return len(self._buffer)


# ----------------------------------------------------------------------
# asyncio stream adapters
# ----------------------------------------------------------------------
async def read_frame(reader) -> dict | None:
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    try:
        # IncompleteReadError subclasses EOFError, so a half-frame EOF
        # lands here too and reads as a (slightly rude) disconnect.
        header = await reader.readexactly(HEADER.size)
    except (EOFError, ConnectionError, OSError):
        return None
    (length,) = HEADER.unpack(header)
    _check_length(length)
    body = await reader.readexactly(length)
    return decode_body(body)


async def write_frame(writer, payload: dict) -> None:
    """Write one frame to an asyncio stream and drain the transport."""
    writer.write(encode_frame(payload))
    await writer.drain()


# ----------------------------------------------------------------------
# Blocking-socket adapters (the sync client)
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, payload: dict) -> None:
    """Send one frame over a blocking socket."""
    sock.sendall(encode_frame(payload))


def recv_frame(sock: socket.socket) -> dict | None:
    """Receive one frame from a blocking socket; ``None`` on clean EOF."""
    header = _recv_exact(sock, HEADER.size)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    _check_length(length)
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_body(body)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            return None
        chunks.extend(chunk)
    return bytes(chunks)


# ----------------------------------------------------------------------
# Envelope helpers
# ----------------------------------------------------------------------
def request(op: str, request_id: int, **fields: Any) -> dict:
    """A request envelope: id, op, and the op's fields."""
    payload = {"id": request_id, "op": op}
    payload.update(fields)
    return payload


def ok(request_id: Any, result: dict) -> dict:
    """An ok response frame for ``request_id``."""
    return {"id": request_id, "ok": True, "result": result}


def error(request_id: Any, kind: str, message: str) -> dict:
    """An error response frame for ``request_id``."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"kind": kind, "message": message},
    }


def parse_response(payload: dict) -> dict:
    """Extract a response's result, raising :class:`ServeError` on error frames."""
    if payload.get("ok"):
        result = payload.get("result")
        return result if isinstance(result, dict) else {}
    detail = payload.get("error") or {}
    raise ServeError(
        str(detail.get("kind", "protocol")),
        str(detail.get("message", "malformed error frame")),
    )
