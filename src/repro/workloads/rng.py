"""Seeded randomness helpers.

Every stochastic component in the library (randomized algorithms, workload
generators, lower-bound instance samplers) draws from a ``random.Random``
created here, so experiments are reproducible from a single integer seed.
``random.Random`` (not numpy) keeps the core library dependency-free.
"""

from __future__ import annotations

import random


def make_rng(seed: int | None) -> random.Random:
    """A fresh ``random.Random``; ``None`` seeds from the OS (tests avoid it)."""
    return random.Random(seed)


def spawn(rng: random.Random, salt: int) -> random.Random:
    """Derive an independent child stream from ``rng`` and an integer salt.

    Used when one experiment seed must drive several independent
    components (instance generation vs. algorithm coin flips) without the
    draws of one perturbing the other.
    """
    return random.Random((rng.getrandbits(48) << 16) ^ salt)
