"""Multi-demand arrival processes for the infrastructure problems.

Chapter 3 needs streams of (element, coverage) arrivals; Chapter 4 needs
per-time-step client *batches* whose sizes follow the patterns its
analysis distinguishes (constant, non-increasing, polynomial, exponential);
Chapter 5 needs arrivals with deadlines.  Everything is a plain list of
small tuples so instances stay printable and hashable for tests.
"""

from __future__ import annotations

import random

from .._validation import require, require_nonnegative_int, require_positive_int


def poisson_like_batches(
    horizon: int, mean_per_step: float, rng: random.Random
) -> list[int]:
    """Batch sizes per time step, approximately Poisson(mean) via binomial.

    A binomial with many cheap trials approximates Poisson without numpy;
    exactness is irrelevant here — only the arrival *pattern* matters.
    """
    require_positive_int(horizon, "horizon")
    require(mean_per_step >= 0, "mean_per_step must be >= 0")
    trials = max(1, int(mean_per_step * 10))
    p = min(1.0, mean_per_step / trials)
    return [
        sum(1 for _ in range(trials) if rng.random() < p)
        for _ in range(horizon)
    ]


def constant_batches(horizon: int, size: int) -> list[int]:
    """The 'does not vary' pattern of Corollary 4.7: same batch every step."""
    require_positive_int(horizon, "horizon")
    require_nonnegative_int(size, "size")
    return [size] * horizon


def nonincreasing_batches(
    horizon: int, start_size: int, rng: random.Random
) -> list[int]:
    """Non-increasing batch sizes (Corollary 4.7's second 'natural' case)."""
    require_positive_int(horizon, "horizon")
    require_positive_int(start_size, "start_size")
    sizes: list[int] = []
    current = start_size
    for _ in range(horizon):
        sizes.append(current)
        if current > 0 and rng.random() < 0.35:
            current = max(0, current - rng.randint(1, max(1, current // 2)))
    return sizes


def polynomial_batches(horizon: int, degree: int) -> list[int]:
    """Batch sizes growing like ``(t+1)^degree`` (poly-bounded case)."""
    require_positive_int(horizon, "horizon")
    require_nonnegative_int(degree, "degree")
    return [(t + 1) ** degree for t in range(horizon)]


def exponential_batches(horizon: int, base: int = 2) -> list[int]:
    """The conjectured-hard pattern of Section 4.4: ``D_i = base^i``.

    Each step's batch matches everything that arrived before it, so every
    step is as hard as the whole history.
    """
    require_positive_int(horizon, "horizon")
    require(base >= 2, "base must be >= 2")
    return [base**t for t in range(horizon)]


def deadline_arrivals(
    horizon: int,
    arrival_probability: float,
    max_slack: int,
    rng: random.Random,
    uniform_slack: int | None = None,
) -> list[tuple[int, int]]:
    """Clients ``(t, d)`` for the Chapter 5 deadline model.

    Each day a client arrives with ``arrival_probability``; its slack ``d``
    is ``uniform_slack`` when given (the *uniform OLD* regime of Theorem
    5.3) else uniform in ``[0, max_slack]`` (*non-uniform OLD*).
    """
    require_positive_int(horizon, "horizon")
    require_nonnegative_int(max_slack, "max_slack")
    require(
        0.0 <= arrival_probability <= 1.0,
        "arrival_probability must be in [0, 1]",
    )
    clients: list[tuple[int, int]] = []
    for t in range(horizon):
        if rng.random() < arrival_probability:
            if uniform_slack is not None:
                slack = uniform_slack
            else:
                slack = rng.randint(0, max_slack)
            clients.append((t, slack))
    return clients


def element_arrivals(
    horizon: int,
    num_elements: int,
    arrivals_per_step: float,
    rng: random.Random,
    max_coverage: int = 1,
    repeats_allowed: bool = True,
) -> list[tuple[int, int, int]]:
    """Element demands ``(element, time, coverage)`` for Chapter 3.

    ``coverage`` (the multicover requirement ``p``) is uniform in
    ``[1, max_coverage]``.  With ``repeats_allowed=False`` each element
    arrives at most once (the plain OnlineSetCover regime).
    """
    require_positive_int(horizon, "horizon")
    require_positive_int(num_elements, "num_elements")
    demands: list[tuple[int, int, int]] = []
    seen: set[int] = set()
    for t in range(horizon):
        batch = int(arrivals_per_step)
        if rng.random() < arrivals_per_step - batch:
            batch += 1
        for _ in range(batch):
            element = rng.randrange(num_elements)
            if not repeats_allowed:
                if len(seen) == num_elements:
                    break
                while element in seen:
                    element = rng.randrange(num_elements)
                seen.add(element)
            coverage = rng.randint(1, max(1, max_coverage))
            demands.append((element, t, coverage))
    return demands
