"""Rainy-day (single-resource demand) sequence generators.

The parking permit problem's demand sequence is the set of *rainy days*
(Figure 1.1).  These generators produce the request patterns the leasing
literature cares about: independent coin flips, weather with memory
(Markov), seasonal bursts (where long leases shine), and isolated sparse
demands (where short leases shine).  All return sorted day lists.
"""

from __future__ import annotations

import random

from .._validation import require, require_positive_int


def bernoulli_days(
    horizon: int, probability: float, rng: random.Random
) -> list[int]:
    """Each day is rainy independently with the given probability."""
    require_positive_int(horizon, "horizon")
    require(0.0 <= probability <= 1.0, "probability must be in [0, 1]")
    return [t for t in range(horizon) if rng.random() < probability]


def markov_days(
    horizon: int,
    start_rain: float,
    stay_rain: float,
    rng: random.Random,
) -> list[int]:
    """Two-state weather chain: rain persists with probability ``stay_rain``.

    ``start_rain`` is the probability of entering rain from a dry day.
    High persistence produces the long rainy stretches that reward long
    leases, the regime Meyerson's model was designed for.
    """
    require_positive_int(horizon, "horizon")
    require(0.0 <= start_rain <= 1.0, "start_rain must be in [0, 1]")
    require(0.0 <= stay_rain <= 1.0, "stay_rain must be in [0, 1]")
    days: list[int] = []
    raining = rng.random() < start_rain
    for t in range(horizon):
        if raining:
            days.append(t)
            raining = rng.random() < stay_rain
        else:
            raining = rng.random() < start_rain
    return days


def seasonal_days(
    horizon: int,
    season_length: int,
    wet_probability: float,
    dry_probability: float,
    rng: random.Random,
) -> list[int]:
    """Alternating wet/dry seasons of ``season_length`` days each.

    Wet seasons rain with ``wet_probability`` per day, dry seasons with
    ``dry_probability``; the resulting periodicity interacts with lease
    lengths (a lease matching the season length is near-optimal).
    """
    require_positive_int(horizon, "horizon")
    require_positive_int(season_length, "season_length")
    days: list[int] = []
    for t in range(horizon):
        wet_season = (t // season_length) % 2 == 0
        p = wet_probability if wet_season else dry_probability
        if rng.random() < p:
            days.append(t)
    return days


def sparse_days(
    horizon: int, num_days: int, rng: random.Random
) -> list[int]:
    """Exactly ``num_days`` isolated rainy days, uniformly placed.

    The anti-long-lease workload: demands so spread out that buying
    anything beyond the shortest lease is wasted.
    """
    require_positive_int(horizon, "horizon")
    require(
        0 <= num_days <= horizon,
        f"num_days must be in [0, {horizon}], got {num_days}",
    )
    return sorted(rng.sample(range(horizon), num_days))


def diurnal_days(
    horizon: int,
    period: int,
    peak_probability: float,
    trough_probability: float,
    rng: random.Random,
) -> list[int]:
    """Sinusoidal demand intensity — the cloud-trace shape.

    The per-day demand probability oscillates smoothly between
    ``trough_probability`` and ``peak_probability`` with the given period,
    modelling the diurnal load cycles of the Section 1.3 cloud scenario.
    Lease lengths near the period's half-wave amortise best, so this
    workload exercises the algorithms' type-selection rather than just
    their buy/skip decisions.
    """
    import math

    require_positive_int(horizon, "horizon")
    require_positive_int(period, "period")
    require(
        0.0 <= trough_probability <= peak_probability <= 1.0,
        "need 0 <= trough_probability <= peak_probability <= 1",
    )
    mid = (peak_probability + trough_probability) / 2.0
    amplitude = (peak_probability - trough_probability) / 2.0
    days: list[int] = []
    for t in range(horizon):
        p = mid + amplitude * math.sin(2.0 * math.pi * t / period)
        if rng.random() < p:
            days.append(t)
    return days


def burst_days(
    horizon: int,
    num_bursts: int,
    burst_length: int,
    rng: random.Random,
) -> list[int]:
    """``num_bursts`` solid rainy stretches of ``burst_length`` days.

    Bursts are placed uniformly (they may overlap; overlapping days merge).
    """
    require_positive_int(horizon, "horizon")
    require_positive_int(burst_length, "burst_length")
    days: set[int] = set()
    for _ in range(num_bursts):
        start = rng.randrange(max(1, horizon - burst_length + 1))
        days.update(range(start, min(horizon, start + burst_length)))
    return sorted(days)
