"""Synthetic request-sequence generators for all four problem families.

The thesis has no experimental section, so workloads are synthesized per
the motivating scenarios of Chapters 1 and 3-5: weather sequences for the
parking permit problem, element/client arrival processes for set cover and
facility leasing, and deadline arrivals for Chapter 5.  Everything is
seeded through :func:`make_rng` for reproducibility.
"""

from .arrivals import (
    constant_batches,
    deadline_arrivals,
    element_arrivals,
    exponential_batches,
    nonincreasing_batches,
    poisson_like_batches,
    polynomial_batches,
)
from .rng import make_rng, spawn
from .weather import (
    bernoulli_days,
    burst_days,
    diurnal_days,
    markov_days,
    seasonal_days,
    sparse_days,
)

__all__ = [
    "bernoulli_days",
    "burst_days",
    "constant_batches",
    "diurnal_days",
    "deadline_arrivals",
    "element_arrivals",
    "exponential_batches",
    "make_rng",
    "markov_days",
    "nonincreasing_batches",
    "poisson_like_batches",
    "polynomial_batches",
    "seasonal_days",
    "sparse_days",
    "spawn",
]
