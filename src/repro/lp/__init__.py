"""LP/ILP substrate: covering programs, exact solvers, duality checks.

Every offline baseline in the library formulates its problem as a
:class:`CoveringProgram` (the shape shared by all ILPs in the thesis) and
solves it through :func:`solve_ilp` / :func:`opt_bounds`.  The primal-dual
analyses are verified with :func:`check_duality`.
"""

from .branch_and_bound import (
    IlpSolution,
    dual_ascent_bound,
    greedy_cover,
    solve_branch_and_bound,
)
from .duality import (
    DualityReport,
    check_duality,
    dual_column_slacks,
    dual_value,
)
from .model import Constraint, CoveringProgram
from .solver import HAVE_SCIPY, lp_relaxation_value, opt_bounds, solve_ilp

__all__ = [
    "Constraint",
    "CoveringProgram",
    "DualityReport",
    "HAVE_SCIPY",
    "IlpSolution",
    "check_duality",
    "dual_ascent_bound",
    "dual_column_slacks",
    "dual_value",
    "greedy_cover",
    "lp_relaxation_value",
    "opt_bounds",
    "solve_branch_and_bound",
    "solve_ilp",
]
