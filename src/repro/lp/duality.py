"""Weak-duality verification (thesis Theorem 2.3).

The primal-dual algorithms of Chapters 2 and 5 construct explicit dual
solutions; their analyses hinge on two checkable facts: the dual is
*feasible* (no column constraint violated) and *weak duality* holds
(``b . y <= c . x`` for any feasible primal ``x``).  This module verifies
both from the raw solutions, independent of any solver — the property
tests run it after every primal-dual execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import CoveringProgram


@dataclass(frozen=True, slots=True)
class DualityReport:
    """Outcome of checking a (primal, dual) pair against a covering program."""

    primal_value: float
    dual_value: float
    primal_feasible: bool
    dual_feasible: bool
    max_dual_violation: float

    @property
    def weak_duality_holds(self) -> bool:
        """``dual <= primal`` within tolerance, given both are feasible."""
        return (
            self.primal_feasible
            and self.dual_feasible
            and self.dual_value <= self.primal_value + 1e-6
        )


def dual_value(program: CoveringProgram, y: list[float]) -> float:
    """Dual objective ``b . y``."""
    return sum(
        row.rhs * y_value for row, y_value in zip(program.constraints, y)
    )


def dual_column_slacks(
    program: CoveringProgram, y: list[float]
) -> list[float]:
    """Per-variable slack ``c_v - sum_rows coeff * y_row`` (negative = violated)."""
    used = [0.0] * program.num_variables
    for row, y_value in zip(program.constraints, y):
        for var, coeff in row.terms:
            used[var] += coeff * y_value
    return [cost - load for cost, load in zip(program.costs, used)]


def check_duality(
    program: CoveringProgram,
    x: list[float],
    y: list[float],
    tol: float = 1e-6,
) -> DualityReport:
    """Verify primal feasibility, dual feasibility, and weak duality.

    Args:
        program: the covering program both solutions refer to.
        x: primal assignment (0/1 or fractional in [0, 1]).
        y: one dual value per constraint row, ``y >= 0``.
        tol: numeric tolerance for feasibility checks.
    """
    slacks = dual_column_slacks(program, y)
    max_violation = max((-s for s in slacks), default=0.0)
    dual_feasible = max_violation <= tol and all(v >= -tol for v in y)
    return DualityReport(
        primal_value=program.objective(x),
        dual_value=dual_value(program, y),
        primal_feasible=program.is_feasible(x, tol=tol),
        dual_feasible=dual_feasible,
        max_dual_violation=max_violation,
    )
