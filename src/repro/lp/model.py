"""A small covering-ILP builder shared by every offline baseline.

All ILPs in the thesis (Figures 2.2, 3.2, 4.1, 5.2, 5.4) are *covering*
programs: minimise ``c . x`` subject to ``A x >= b`` with ``x in {0,1}``,
non-negative matrix entries, and non-negative right-hand sides.
:class:`CoveringProgram` represents exactly this shape sparsely, which is
enough structure for the exact branch-and-bound fallback and the
dual-ascent lower bound to be correct without a general LP solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ModelError


@dataclass(frozen=True, slots=True)
class Constraint:
    """One covering row: ``sum coeff_v * x_v >= rhs``."""

    terms: tuple[tuple[int, float], ...]
    rhs: float
    name: str = ""


@dataclass
class CoveringProgram:
    """Sparse 0/1 covering program ``min c.x : A x >= b, x in {0,1}``.

    Build with :meth:`add_variable` then :meth:`add_constraint`; hand the
    finished program to :mod:`repro.lp.solver`.
    """

    costs: list[float] = field(default_factory=list)
    names: list[str] = field(default_factory=list)
    constraints: list[Constraint] = field(default_factory=list)
    payloads: list[object] = field(default_factory=list)

    @property
    def num_variables(self) -> int:
        return len(self.costs)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def add_variable(
        self, cost: float, name: str = "", payload: object = None
    ) -> int:
        """Add a 0/1 variable with objective coefficient ``cost``; return index.

        ``payload`` carries the domain object the variable selects (a
        :class:`~repro.core.lease.Lease`, typically) so solutions can be
        translated back without a parallel lookup table.
        """
        cost = float(cost)
        if cost < 0:
            raise ModelError(f"covering programs need costs >= 0, got {cost}")
        self.costs.append(cost)
        self.names.append(name or f"x{len(self.costs) - 1}")
        self.payloads.append(payload)
        return len(self.costs) - 1

    def add_constraint(
        self, terms: dict[int, float], rhs: float, name: str = ""
    ) -> int:
        """Add a row ``sum terms[v] * x_v >= rhs``; return row index."""
        rhs = float(rhs)
        if rhs < 0:
            raise ModelError(f"covering rows need rhs >= 0, got {rhs}")
        cleaned: list[tuple[int, float]] = []
        for var, coeff in sorted(terms.items()):
            coeff = float(coeff)
            if coeff < 0:
                raise ModelError(
                    f"covering rows need coefficients >= 0, got {coeff}"
                )
            if not 0 <= var < self.num_variables:
                raise ModelError(f"unknown variable index {var}")
            if coeff > 0:
                cleaned.append((var, coeff))
        max_cover = sum(coeff for _, coeff in cleaned)
        if max_cover + 1e-9 < rhs:
            raise ModelError(
                f"row {name or len(self.constraints)} is infeasible even with "
                f"all variables set: coverage {max_cover} < rhs {rhs}"
            )
        self.constraints.append(
            Constraint(terms=tuple(cleaned), rhs=rhs, name=name)
        )
        return len(self.constraints) - 1

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def objective(self, x: list[float]) -> float:
        """Objective value ``c . x``."""
        return sum(c * v for c, v in zip(self.costs, x))

    def is_feasible(self, x: list[float], tol: float = 1e-6) -> bool:
        """Whether ``x`` satisfies every covering row (within ``tol``)."""
        return all(
            sum(coeff * x[var] for var, coeff in row.terms) + tol >= row.rhs
            for row in self.constraints
        )

    def violated_rows(self, x: list[float], tol: float = 1e-6) -> list[int]:
        """Indices of rows not satisfied by ``x``."""
        return [
            index
            for index, row in enumerate(self.constraints)
            if sum(coeff * x[var] for var, coeff in row.terms) + tol < row.rhs
        ]

    def selected_payloads(self, x: list[float]) -> list[object]:
        """Payloads of variables set (rounded) to one in ``x``."""
        return [
            payload
            for payload, value in zip(self.payloads, x)
            if value > 0.5 and payload is not None
        ]
