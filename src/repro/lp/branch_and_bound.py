"""Pure-Python exact solver for small covering ILPs.

Best-first branch and bound over 0/1 covering programs
(:class:`~repro.lp.model.CoveringProgram`).  The incumbent starts from a
greedy density cover, lower bounds come from dual ascent
(:func:`dual_ascent_bound`), and branching fixes the cheapest-per-unit
variable of the most violated row first — the classic recipe for covering
structure.  It is the fallback when scipy is unavailable; instance sizes
in the test-suite keep it comfortably under the node budget.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from ..errors import SolverError
from .model import CoveringProgram


@dataclass(frozen=True, slots=True)
class IlpSolution:
    """An exact ILP solution: optimal value, assignment, solver label."""

    value: float
    x: tuple[float, ...]
    method: str


def greedy_cover(program: CoveringProgram) -> list[float] | None:
    """Greedy density heuristic: a feasible (not optimal) 0/1 solution.

    Repeatedly picks the variable maximising remaining-coverage per unit
    cost.  Returns ``None`` only if the program is infeasible (which
    :meth:`CoveringProgram.add_constraint` already prevents).
    """
    x = [0.0] * program.num_variables
    remaining = [row.rhs for row in program.constraints]
    rows_of_var: dict[int, list[tuple[int, float]]] = {}
    for row_index, row in enumerate(program.constraints):
        for var, coeff in row.terms:
            rows_of_var.setdefault(var, []).append((row_index, coeff))

    while any(need > 1e-9 for need in remaining):
        best_var, best_density = -1, 0.0
        for var in range(program.num_variables):
            if x[var] == 1.0:
                continue
            coverage = sum(
                min(coeff, remaining[row_index])
                for row_index, coeff in rows_of_var.get(var, ())
                if remaining[row_index] > 1e-9
            )
            if coverage <= 1e-12:
                continue
            cost = program.costs[var]
            density = coverage / cost if cost > 0 else float("inf")
            if density > best_density:
                best_var, best_density = var, density
        if best_var < 0:
            return None
        x[best_var] = 1.0
        for row_index, coeff in rows_of_var.get(best_var, ()):
            remaining[row_index] = max(0.0, remaining[row_index] - coeff)
    return x


def dual_ascent_bound(
    program: CoveringProgram, fixed_one: set[int], fixed_zero: set[int]
) -> float:
    """A valid lower bound on the remaining covering cost via dual ascent.

    Raises each unsatisfied row's dual as far as the free variables'
    reduced costs allow (weak duality for covering LPs).  Variables fixed
    to one contribute their cost outside this function; variables fixed to
    zero are ignored entirely.
    """
    slack = {
        var: program.costs[var]
        for var in range(program.num_variables)
        if var not in fixed_zero and var not in fixed_one
    }
    bound = 0.0
    for row in program.constraints:
        covered = sum(
            coeff for var, coeff in row.terms if var in fixed_one
        )
        need = row.rhs - covered
        if need <= 1e-9:
            continue
        free_terms = [
            (var, coeff) for var, coeff in row.terms if var in slack
        ]
        if not free_terms:
            return float("inf")  # row cannot be satisfied under the fixing
        # Raise this row's dual until the tightest free column is exhausted.
        raise_by = min(slack[var] / coeff for var, coeff in free_terms)
        # The dual contributes rhs_remaining * y; cap y so columns stay
        # feasible, and never claim more than one unit of need per raise.
        bound += raise_by * need
        for var, coeff in free_terms:
            slack[var] -= raise_by * coeff
    return bound


def solve_branch_and_bound(
    program: CoveringProgram, node_budget: int = 200_000
) -> IlpSolution:
    """Exactly solve a covering ILP by best-first branch and bound.

    Args:
        program: the covering program.
        node_budget: abort with :class:`SolverError` after this many nodes,
            so a mis-sized instance fails loudly instead of hanging.
    """
    greedy = greedy_cover(program)
    if greedy is None:
        raise SolverError("covering program is infeasible")
    incumbent_x = list(greedy)
    incumbent_value = program.objective(incumbent_x)

    counter = itertools.count()
    root_bound = dual_ascent_bound(program, set(), set())
    heap: list[tuple[float, int, set[int], set[int]]] = [
        (root_bound, next(counter), set(), set())
    ]
    nodes = 0

    while heap:
        bound_plus_fixed, _, fixed_one, fixed_zero = heapq.heappop(heap)
        if bound_plus_fixed >= incumbent_value - 1e-9:
            continue
        nodes += 1
        if nodes > node_budget:
            raise SolverError(
                f"branch and bound exceeded node budget {node_budget}"
            )
        x = [
            1.0 if var in fixed_one else 0.0
            for var in range(program.num_variables)
        ]
        violated = program.violated_rows(x)
        if not violated:
            value = program.objective(x)
            if value < incumbent_value:
                incumbent_value, incumbent_x = value, x
            continue
        # Branch on the free variables of the first violated row, cheapest
        # per covering unit first; one child per "this var is the next one
        # set to 1", plus implicit exclusion via fixed_zero accumulation.
        row = program.constraints[violated[0]]
        free = sorted(
            (
                (program.costs[var] / coeff, var)
                for var, coeff in row.terms
                if var not in fixed_one and var not in fixed_zero
            ),
        )
        if not free:
            continue  # row unsatisfiable under this fixing; prune
        excluded = set(fixed_zero)
        for _, var in free:
            child_one = fixed_one | {var}
            child_zero = set(excluded)
            fixed_cost = sum(program.costs[v] for v in child_one)
            child_bound = fixed_cost + dual_ascent_bound(
                program, child_one, child_zero
            )
            if child_bound < incumbent_value - 1e-9:
                heapq.heappush(
                    heap, (child_bound, next(counter), child_one, child_zero)
                )
            excluded.add(var)

    return IlpSolution(
        value=incumbent_value,
        x=tuple(incumbent_x),
        method="branch-and-bound",
    )
