"""Solver front-end: exact ILP optimum and LP-relaxation lower bounds.

The default exact path uses scipy's HiGHS backend (``scipy.optimize.milp``)
when scipy is importable; otherwise the pure-Python branch and bound from
:mod:`repro.lp.branch_and_bound` takes over, so the library stays fully
functional without compiled dependencies.  LP relaxations likewise fall
back to a dual-ascent bound, which is weaker but still a *valid* lower
bound — experiments report which method produced each number.
"""

from __future__ import annotations

from ..core.results import OptBounds
from ..errors import SolverError
from .branch_and_bound import (
    IlpSolution,
    dual_ascent_bound,
    greedy_cover,
    solve_branch_and_bound,
)
from .model import CoveringProgram

try:  # scipy is an optional, preferred backend
    import numpy as _np
    from scipy import optimize as _opt
    from scipy import sparse as _sparse

    HAVE_SCIPY = True
except Exception:  # pragma: no cover - exercised only without scipy
    HAVE_SCIPY = False


def _scipy_matrices(program: CoveringProgram):
    """Assemble (costs, A, b) for scipy from a covering program."""
    rows, cols, data = [], [], []
    rhs = []
    for row_index, row in enumerate(program.constraints):
        rhs.append(row.rhs)
        for var, coeff in row.terms:
            rows.append(row_index)
            cols.append(var)
            data.append(coeff)
    matrix = _sparse.csr_matrix(
        (data, (rows, cols)),
        shape=(program.num_constraints, program.num_variables),
    )
    return _np.asarray(program.costs, dtype=float), matrix, _np.asarray(rhs)


def solve_ilp(
    program: CoveringProgram, node_budget: int = 200_000
) -> IlpSolution:
    """Exactly solve the 0/1 covering program.

    Uses scipy/HiGHS when available, else branch and bound.  Raises
    :class:`~repro.errors.SolverError` on solver failure.
    """
    if program.num_variables == 0:
        if program.num_constraints and any(
            row.rhs > 1e-9 for row in program.constraints
        ):
            raise SolverError("no variables but positive covering demand")
        return IlpSolution(value=0.0, x=(), method="trivial")

    if HAVE_SCIPY:
        costs, matrix, rhs = _scipy_matrices(program)
        constraints = (
            _opt.LinearConstraint(matrix, lb=rhs, ub=_np.inf)
            if program.num_constraints
            else ()
        )
        result = _opt.milp(
            c=costs,
            constraints=constraints,
            integrality=_np.ones(program.num_variables),
            bounds=_opt.Bounds(lb=0.0, ub=1.0),
        )
        if not result.success:
            raise SolverError(f"scipy milp failed: {result.message}")
        x = tuple(float(round(v)) for v in result.x)
        # Re-evaluate on the rounded assignment so the value is consistent
        # with the reported x.
        return IlpSolution(
            value=program.objective(list(x)), x=x, method="scipy-highs"
        )

    return solve_branch_and_bound(program, node_budget=node_budget)


def lp_relaxation_value(program: CoveringProgram) -> tuple[float, str]:
    """Optimal value of the LP relaxation (a lower bound on the ILP).

    Returns ``(value, method)``.  Without scipy, the dual-ascent bound is
    returned instead; it is below the true LP value but still valid.
    """
    if program.num_variables == 0:
        return 0.0, "trivial"
    if HAVE_SCIPY:
        costs, matrix, rhs = _scipy_matrices(program)
        result = _opt.linprog(
            c=costs,
            A_ub=-matrix if program.num_constraints else None,
            b_ub=-rhs if program.num_constraints else None,
            bounds=(0.0, 1.0),
            method="highs",
        )
        if not result.success:
            raise SolverError(f"scipy linprog failed: {result.message}")
        return float(result.fun), "scipy-lp"
    return dual_ascent_bound(program, set(), set()), "dual-ascent"


def opt_bounds(
    program: CoveringProgram,
    exact_variable_limit: int = 4_000,
    node_budget: int = 200_000,
) -> OptBounds:
    """Bracket the ILP optimum, solving exactly when the program is small.

    Programs with at most ``exact_variable_limit`` variables are solved
    exactly; larger ones get ``[LP relaxation, greedy cover]`` brackets.
    """
    if program.num_variables <= exact_variable_limit:
        solution = solve_ilp(program, node_budget=node_budget)
        return OptBounds.exactly(solution.value, method=solution.method)
    lower, method = lp_relaxation_value(program)
    greedy = greedy_cover(program)
    if greedy is None:
        raise SolverError("covering program is infeasible")
    upper = program.objective(greedy)
    return OptBounds(
        lower=lower, upper=upper, exact=False, method=f"{method}+greedy"
    )
