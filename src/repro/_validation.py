"""Internal argument-validation helpers shared across subpackages.

These helpers raise :class:`repro.errors.ModelError` with uniform,
actionable messages.  They are intentionally small and dependency-free so
that model constructors stay readable: each constructor states *what* must
hold, and these helpers state *how* violations are reported.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from .errors import ModelError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ModelError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ModelError(message)


def require_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is an ``int`` strictly greater than zero."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ModelError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ModelError(f"{name} must be positive, got {value}")
    return value


def require_nonnegative_int(value: int, name: str) -> int:
    """Validate that ``value`` is an ``int`` greater than or equal to zero."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ModelError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ModelError(f"{name} must be non-negative, got {value}")
    return value


def require_positive_number(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    value = float(value)
    if not math.isfinite(value) or value <= 0.0:
        raise ModelError(f"{name} must be a finite positive number, got {value}")
    return value


def require_nonnegative_number(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number greater than or equal to zero."""
    value = float(value)
    if not math.isfinite(value) or value < 0.0:
        raise ModelError(f"{name} must be a finite non-negative number, got {value}")
    return value


def require_sorted_unique(values: Sequence[int], name: str) -> None:
    """Validate that ``values`` is strictly increasing (sorted, no duplicates)."""
    for earlier, later in zip(values, values[1:]):
        if later <= earlier:
            raise ModelError(
                f"{name} must be strictly increasing, "
                f"got {earlier} followed by {later}"
            )


def require_in_range(value: int, low: int, high: int, name: str) -> int:
    """Validate ``low <= value < high`` (half-open, like ``range``)."""
    if not low <= value < high:
        raise ModelError(f"{name} must be in [{low}, {high}), got {value}")
    return value


def freeze_ints(values: Iterable[int], name: str) -> tuple[int, ...]:
    """Coerce an iterable of ints to a tuple, validating each entry."""
    frozen = []
    for value in values:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ModelError(
                f"{name} entries must be ints, got {type(value).__name__}"
            )
        frozen.append(value)
    return tuple(frozen)
